package core

import (
	"container/heap"
	"fmt"

	"repro/internal/xrand"
)

// Snapshot/restore for the baseline schemes, completing the checkpoint
// coverage started in checkpoint.go: every sampler in this package can be
// checkpointed and restored to continue the identical stochastic process.
// Weighted per-item state is encoded as parallel slices so the snapshot
// types stay flat and gob/JSON-clean.

// BTBSSnapshot is the full state of a BTBS sampler.
type BTBSSnapshot[T any] struct {
	Lambda float64
	Sample []T
	Now    float64
	RNG    xrand.State
}

// Snapshot captures the sampler's complete state.
func (s *BTBS[T]) Snapshot() BTBSSnapshot[T] {
	return BTBSSnapshot[T]{
		Lambda: s.lambda,
		Sample: append([]T(nil), s.sample...),
		Now:    s.now,
		RNG:    s.rng.State(),
	}
}

// RestoreBTBS reconstructs a sampler from a snapshot.
func RestoreBTBS[T any](snap BTBSSnapshot[T]) (*BTBS[T], error) {
	rng, err := xrand.FromState(snap.RNG)
	if err != nil {
		return nil, err
	}
	s, err := NewBTBS[T](snap.Lambda, rng)
	if err != nil {
		return nil, err
	}
	s.sample = append([]T(nil), snap.Sample...)
	s.now = snap.Now
	return s, nil
}

// BChaoSnapshot is the full state of a BChao sampler. Overweight items are
// stored as parallel item/weight slices, ascending by weight.
type BChaoSnapshot[T any] struct {
	Lambda      float64
	N           int
	Sample      []T // non-overweight items
	W           float64
	Overweight  []T
	OverWeights []float64
	Now         float64
	RNG         xrand.State
}

// Snapshot captures the sampler's complete state.
func (c *BChao[T]) Snapshot() BChaoSnapshot[T] {
	snap := BChaoSnapshot[T]{
		Lambda: c.lambda,
		N:      c.n,
		Sample: append([]T(nil), c.s...),
		W:      c.w,
		Now:    c.now,
		RNG:    c.rng.State(),
	}
	for i := range c.v {
		snap.Overweight = append(snap.Overweight, c.v[i].item)
		snap.OverWeights = append(snap.OverWeights, c.v[i].w)
	}
	return snap
}

// RestoreBChao reconstructs a sampler from a snapshot.
func RestoreBChao[T any](snap BChaoSnapshot[T]) (*BChao[T], error) {
	if len(snap.Overweight) != len(snap.OverWeights) {
		return nil, fmt.Errorf("core: snapshot has %d overweight items but %d weights",
			len(snap.Overweight), len(snap.OverWeights))
	}
	if len(snap.Sample)+len(snap.Overweight) > snap.N {
		return nil, fmt.Errorf("core: snapshot sample %d+%d exceeds bound %d",
			len(snap.Sample), len(snap.Overweight), snap.N)
	}
	if snap.W < 0 {
		return nil, fmt.Errorf("core: snapshot has negative aggregate weight %v", snap.W)
	}
	rng, err := xrand.FromState(snap.RNG)
	if err != nil {
		return nil, err
	}
	c, err := NewBChao[T](snap.Lambda, snap.N, rng)
	if err != nil {
		return nil, err
	}
	c.s = append([]T(nil), snap.Sample...)
	c.w = snap.W
	for i := range snap.Overweight {
		if i > 0 && snap.OverWeights[i] < snap.OverWeights[i-1] {
			return nil, fmt.Errorf("core: snapshot overweight items not ascending by weight")
		}
		c.v = append(c.v, weighted[T]{item: snap.Overweight[i], w: snap.OverWeights[i]})
	}
	c.now = snap.Now
	return c, nil
}

// SlidingWindowSnapshot is the full state of a SlidingWindow sampler. Items
// are stored oldest first.
type SlidingWindowSnapshot[T any] struct {
	N     int
	Items []T
}

// Snapshot captures the sampler's complete state.
func (s *SlidingWindow[T]) Snapshot() SlidingWindowSnapshot[T] {
	return SlidingWindowSnapshot[T]{N: s.n, Items: s.Sample()}
}

// RestoreSlidingWindow reconstructs a sampler from a snapshot.
func RestoreSlidingWindow[T any](snap SlidingWindowSnapshot[T]) (*SlidingWindow[T], error) {
	if len(snap.Items) > snap.N {
		return nil, fmt.Errorf("core: snapshot holds %d items but window size is %d", len(snap.Items), snap.N)
	}
	s, err := NewSlidingWindow[T](snap.N)
	if err != nil {
		return nil, err
	}
	copy(s.buf, snap.Items)
	s.size = len(snap.Items)
	return s, nil
}

// TimeWindowSnapshot is the full state of a TimeWindow sampler. Items are
// stored oldest first with their arrival times.
type TimeWindowSnapshot[T any] struct {
	Horizon float64
	Items   []T
	Times   []float64
	Now     float64
}

// Snapshot captures the sampler's complete state.
func (s *TimeWindow[T]) Snapshot() TimeWindowSnapshot[T] {
	return TimeWindowSnapshot[T]{
		Horizon: s.horizon,
		Items:   append([]T(nil), s.items...),
		Times:   append([]float64(nil), s.times...),
		Now:     s.now,
	}
}

// RestoreTimeWindow reconstructs a sampler from a snapshot.
func RestoreTimeWindow[T any](snap TimeWindowSnapshot[T]) (*TimeWindow[T], error) {
	if len(snap.Items) != len(snap.Times) {
		return nil, fmt.Errorf("core: snapshot has %d items but %d times", len(snap.Items), len(snap.Times))
	}
	s, err := NewTimeWindow[T](snap.Horizon)
	if err != nil {
		return nil, err
	}
	for i, t := range snap.Times {
		if t > snap.Now || (i > 0 && t < snap.Times[i-1]) {
			return nil, fmt.Errorf("core: snapshot arrival times not ascending and ≤ Now")
		}
	}
	s.items = append([]T(nil), snap.Items...)
	s.times = append([]float64(nil), snap.Times...)
	s.now = snap.Now
	return s, nil
}

// PriorityTimeWindowSnapshot is the full state of a PriorityTimeWindow
// sampler, with candidates as parallel item/arrival/priority slices in
// arrival order.
type PriorityTimeWindowSnapshot[T any] struct {
	Horizon    float64
	N          int
	Items      []T
	Arrivals   []float64
	Priorities []float64
	Now        float64
	RNG        xrand.State
}

// Snapshot captures the sampler's complete state.
func (s *PriorityTimeWindow[T]) Snapshot() PriorityTimeWindowSnapshot[T] {
	snap := PriorityTimeWindowSnapshot[T]{
		Horizon: s.horizon,
		N:       s.n,
		Now:     s.now,
		RNG:     s.rng.State(),
	}
	for i := range s.items {
		snap.Items = append(snap.Items, s.items[i].item)
		snap.Arrivals = append(snap.Arrivals, s.items[i].arrival)
		snap.Priorities = append(snap.Priorities, s.items[i].priority)
	}
	return snap
}

// RestorePriorityTimeWindow reconstructs a sampler from a snapshot.
func RestorePriorityTimeWindow[T any](snap PriorityTimeWindowSnapshot[T]) (*PriorityTimeWindow[T], error) {
	if len(snap.Items) != len(snap.Arrivals) || len(snap.Items) != len(snap.Priorities) {
		return nil, fmt.Errorf("core: snapshot has %d items, %d arrivals, %d priorities",
			len(snap.Items), len(snap.Arrivals), len(snap.Priorities))
	}
	rng, err := xrand.FromState(snap.RNG)
	if err != nil {
		return nil, err
	}
	s, err := NewPriorityTimeWindow[T](snap.Horizon, snap.N, rng)
	if err != nil {
		return nil, err
	}
	for i := range snap.Items {
		if snap.Arrivals[i] > snap.Now || (i > 0 && snap.Arrivals[i] < snap.Arrivals[i-1]) {
			return nil, fmt.Errorf("core: snapshot arrival times not ascending and ≤ Now")
		}
		s.items = append(s.items, pwItem[T]{
			item:     snap.Items[i],
			arrival:  snap.Arrivals[i],
			priority: snap.Priorities[i],
		})
	}
	s.now = snap.Now
	return s, nil
}

// AResSnapshot is the full state of an ARes sampler, with reservoir entries
// as parallel item/log-key slices in heap order.
type AResSnapshot[T any] struct {
	Lambda  float64
	N       int
	Items   []T
	LogKeys []float64
	Now     float64
	RNG     xrand.State
}

// Snapshot captures the sampler's complete state.
func (s *ARes[T]) Snapshot() AResSnapshot[T] {
	snap := AResSnapshot[T]{
		Lambda: s.lambda,
		N:      s.n,
		Now:    s.now,
		RNG:    s.rng.State(),
	}
	for i := range s.h {
		snap.Items = append(snap.Items, s.h[i].item)
		snap.LogKeys = append(snap.LogKeys, s.h[i].logKey)
	}
	return snap
}

// RestoreARes reconstructs a sampler from a snapshot.
func RestoreARes[T any](snap AResSnapshot[T]) (*ARes[T], error) {
	if len(snap.Items) != len(snap.LogKeys) {
		return nil, fmt.Errorf("core: snapshot has %d items but %d keys", len(snap.Items), len(snap.LogKeys))
	}
	if len(snap.Items) > snap.N {
		return nil, fmt.Errorf("core: snapshot holds %d items but bound is %d", len(snap.Items), snap.N)
	}
	rng, err := xrand.FromState(snap.RNG)
	if err != nil {
		return nil, err
	}
	s, err := NewARes[T](snap.Lambda, snap.N, rng)
	if err != nil {
		return nil, err
	}
	for i := range snap.Items {
		s.h = append(s.h, aresEntry[T]{item: snap.Items[i], logKey: snap.LogKeys[i]})
	}
	heap.Init(&s.h)
	s.now = snap.Now
	return s, nil
}
