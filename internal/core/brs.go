package core

import (
	"fmt"

	"repro/internal/xrand"
)

// BRS is batched reservoir sampling (Appendix B, Algorithm 5): the classical
// reservoir scheme extended to batch arrivals. At every time t the sample is
// a uniform random subset of size min(n, Wₜ) of all Wₜ items seen so far —
// a bounded sample with no time biasing (decay rate 0). It serves as the
// paper's "Unif" baseline in the model-quality experiments.
type BRS[T any] struct {
	n      int
	rng    *xrand.RNG
	sample []T
	w      int // number of items seen
}

// NewBRS returns a batched reservoir sampler with capacity n.
func NewBRS[T any](n int, rng *xrand.RNG) (*BRS[T], error) {
	return NewBRSFrom[T](n, nil, rng)
}

// NewBRSFrom is NewBRS starting from an initial sample S₀ with |S₀| ≤ n,
// assumed to be a uniform sample of |S₀| items already seen.
func NewBRSFrom[T any](n int, initial []T, rng *xrand.RNG) (*BRS[T], error) {
	switch {
	case n <= 0:
		return nil, fmt.Errorf("core: reservoir size must be positive, got %d", n)
	case len(initial) > n:
		return nil, fmt.Errorf("core: initial sample size %d exceeds capacity %d", len(initial), n)
	case rng == nil:
		return nil, fmt.Errorf("core: nil RNG")
	}
	s := &BRS[T]{n: n, rng: rng, w: len(initial)}
	s.sample = append(s.sample, initial...)
	return s, nil
}

// Advance merges a batch into the reservoir (Algorithm 5): the number M of
// batch items entering the sample is hypergeometric(C, |Bₜ|, W) where
// C = min(n, W+|Bₜ|), the M entrants are drawn uniformly from the batch, and
// the survivors are drawn uniformly from the current sample. This exactly
// simulates |Bₜ| steps of the sequential reservoir algorithm.
func (s *BRS[T]) Advance(batch []T) {
	c := s.n
	if s.w+len(batch) < c {
		c = s.w + len(batch)
	}
	m := s.rng.Hypergeometric(c, len(batch), s.w)
	keep := c - m
	if keep > len(s.sample) {
		keep = len(s.sample)
	}
	s.sample = xrand.SampleInPlace(s.rng, s.sample, keep)
	s.sample = append(s.sample, xrand.Sample(s.rng, batch, m)...)
	s.w += len(batch)
}

// Sample returns a copy of the current sample.
func (s *BRS[T]) Sample() []T {
	return s.AppendSample(make([]T, 0, len(s.sample)))
}

// AppendSample appends the current sample to dst; see core.AppendSampler.
func (s *BRS[T]) AppendSample(dst []T) []T { return append(dst, s.sample...) }

// Size returns the exact current sample size.
func (s *BRS[T]) Size() int { return len(s.sample) }

// ExpectedSize returns the exact current size.
func (s *BRS[T]) ExpectedSize() float64 { return float64(len(s.sample)) }

// Seen returns W, the total number of items observed so far.
func (s *BRS[T]) Seen() int { return s.w }

// Capacity returns the reservoir bound n.
func (s *BRS[T]) Capacity() int { return s.n }
