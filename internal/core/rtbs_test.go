package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func mustRTBS(t *testing.T, lambda float64, n int, seed uint64) *RTBS[int] {
	t.Helper()
	s, err := NewRTBS[int](lambda, n, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRTBSConstructorValidation(t *testing.T) {
	rng := xrand.New(1)
	if _, err := NewRTBS[int](-1, 10, rng); err == nil {
		t.Error("negative λ accepted")
	}
	if _, err := NewRTBS[int](math.NaN(), 10, rng); err == nil {
		t.Error("NaN λ accepted")
	}
	if _, err := NewRTBS[int](0.1, 0, rng); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewRTBS[int](0.1, 10, nil); err == nil {
		t.Error("nil RNG accepted")
	}
	if _, err := NewRTBSFrom(0.1, 2, []int{1, 2, 3}, rng); err == nil {
		t.Error("oversized initial sample accepted")
	}
	if _, err := NewRTBS[int](0, 10, rng); err != nil {
		t.Errorf("λ = 0 should be allowed: %v", err)
	}
}

func TestRTBSNeverExceedsBound(t *testing.T) {
	rng := xrand.New(77)
	f := func(seed uint64, sizes []uint16) bool {
		s, err := NewRTBS[int](0.1, 50, xrand.New(seed))
		if err != nil {
			return false
		}
		id := 0
		for _, raw := range sizes {
			b := int(raw % 300)
			batch := make([]int, b)
			for i := range batch {
				batch[i] = id
				id++
			}
			s.Advance(batch)
			if got := s.Sample(); len(got) > 50 {
				return false
			}
			if s.Latent().Footprint() > 50 {
				return false
			}
			if s.ExpectedSize() > 50+1e-9 {
				return false
			}
		}
		return true
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRTBSUnsaturatedTracksTotalWeight(t *testing.T) {
	// While W < n, R-TBS must have C = W exactly: every arriving item is
	// accepted with probability 1 (equation (5) with Cₜ = Wₜ).
	s := mustRTBS(t, 0.1, 1000, 5)
	batch := make([]int, 50)
	w := 0.0
	for tstep := 1; tstep <= 20; tstep++ {
		s.Advance(batch)
		w = w*math.Exp(-0.1) + 50
		if math.Abs(s.TotalWeight()-w) > 1e-9 {
			t.Fatalf("t=%d: W = %v, want %v", tstep, s.TotalWeight(), w)
		}
		if math.Abs(s.ExpectedSize()-w) > 1e-9 {
			t.Fatalf("t=%d: C = %v, want W = %v", tstep, s.ExpectedSize(), w)
		}
		if s.Saturated() {
			t.Fatalf("t=%d: saturated too early", tstep)
		}
	}
}

func TestRTBSSaturatedStaysAtBound(t *testing.T) {
	s := mustRTBS(t, 0.1, 100, 6)
	batch := make([]int, 200)
	for i := range batch {
		batch[i] = i
	}
	for tstep := 0; tstep < 50; tstep++ {
		s.Advance(batch)
	}
	if !s.Saturated() {
		t.Fatal("should be saturated")
	}
	if s.ExpectedSize() != 100 {
		t.Fatalf("C = %v, want exactly 100", s.ExpectedSize())
	}
	if got := len(s.Sample()); got != 100 {
		t.Fatalf("|S| = %d, want exactly 100 (saturated samples are integral)", got)
	}
	if s.Latent().HasPartial() {
		t.Fatal("saturated latent sample must have no partial item")
	}
}

func TestRTBSUndershootShrinksSample(t *testing.T) {
	// Saturate, then stop the stream: the sample must decay below n,
	// demonstrating the "sample shrinks when data dries up" behaviour that
	// distinguishes R-TBS from Chao's algorithm (Section 7).
	lambda := 0.5
	s := mustRTBS(t, lambda, 100, 7)
	big := make([]int, 500)
	s.Advance(big)
	if !s.Saturated() {
		t.Fatal("not saturated after big batch")
	}
	w := s.TotalWeight()
	for i := 0; i < 10; i++ {
		s.Advance(nil)
		w *= math.Exp(-lambda)
		if math.Abs(s.TotalWeight()-w) > 1e-6 {
			t.Fatalf("W drifted: %v vs %v", s.TotalWeight(), w)
		}
	}
	if s.Saturated() {
		t.Fatal("still saturated after decay")
	}
	want := math.Min(100, w)
	if math.Abs(s.ExpectedSize()-want) > 1e-6 {
		t.Fatalf("C = %v, want %v", s.ExpectedSize(), want)
	}
}

// TestRTBSInclusionProperty is the central statistical test: it verifies
// equation (4), Pr[i ∈ Sₜ] = (Cₜ/Wₜ)·wₜ(i), and hence property (1), by
// running many independent replicas over a batch sequence that exercises
// unsaturated, overshoot, saturated and undershoot transitions.
func TestRTBSInclusionProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const (
		lambda   = 0.3
		n        = 20
		replicas = 60000
	)
	// Batch sizes chosen to force every code path: fill-up (5, 5),
	// overshoot (30), saturated replacement (25), decay while saturated
	// (0, 0, 0), undershoot (the final 0 drops W below n), refill (8).
	batchSizes := []int{5, 5, 30, 25, 0, 0, 0, 0, 8}
	totalItems := 0
	for _, b := range batchSizes {
		totalItems += b
	}
	// arrivals[id] = batch index (0-based) of item id.
	arrivals := make([]int, totalItems)
	{
		id := 0
		for bi, b := range batchSizes {
			for j := 0; j < b; j++ {
				arrivals[id] = bi
				id++
			}
		}
	}

	counts := make([]float64, totalItems)
	var lastC, lastW float64
	for rep := 0; rep < replicas; rep++ {
		s, err := NewRTBS[int](lambda, n, xrand.New(uint64(rep)+1_000_000))
		if err != nil {
			t.Fatal(err)
		}
		id := 0
		for _, b := range batchSizes {
			batch := make([]int, b)
			for j := range batch {
				batch[j] = id
				id++
			}
			s.Advance(batch)
		}
		for _, item := range s.Sample() {
			counts[item]++
		}
		lastC, lastW = s.ExpectedSize(), s.TotalWeight()
	}

	tFinal := float64(len(batchSizes))
	for id := 0; id < totalItems; id++ {
		got := counts[id] / replicas
		age := tFinal - float64(arrivals[id]+1)
		want := lastC / lastW * math.Exp(-lambda*age)
		se := math.Sqrt(want*(1-want)/replicas) + 1e-9
		if math.Abs(got-want) > 6*se {
			t.Errorf("item %d (batch %d): inclusion %v, want %v (±%v)",
				id, arrivals[id]+1, got, want, 6*se)
		}
	}
}

// TestRTBSRelativeInclusion verifies property (1) directly: the ratio of
// inclusion probabilities between two batches equals e^{−λ·Δt}.
func TestRTBSRelativeInclusion(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const (
		lambda   = 0.1
		n        = 40
		batches  = 12
		bSize    = 20
		replicas = 40000
	)
	perBatch := make([]float64, batches)
	for rep := 0; rep < replicas; rep++ {
		s, err := NewRTBS[int](lambda, n, xrand.New(uint64(rep)+5_000_000))
		if err != nil {
			t.Fatal(err)
		}
		id := 0
		for b := 0; b < batches; b++ {
			batch := make([]int, bSize)
			for j := range batch {
				batch[j] = id
				id++
			}
			s.Advance(batch)
		}
		for _, item := range s.Sample() {
			perBatch[item/bSize]++
		}
	}
	// perBatch[b]/(replicas·bSize) estimates the common inclusion
	// probability of batch b's items.
	p := make([]float64, batches)
	for b := range perBatch {
		p[b] = perBatch[b] / (replicas * bSize)
	}
	for b := 0; b < batches-1; b++ {
		ratio := p[b] / p[b+1]
		want := math.Exp(-lambda)
		if math.Abs(ratio-want) > 0.05 {
			t.Errorf("batch %d/%d inclusion ratio = %v, want %v", b+1, b+2, ratio, want)
		}
	}
}

func TestRTBSDeterministicGivenSeed(t *testing.T) {
	run := func() []int {
		s := mustRTBS(t, 0.2, 30, 99)
		id := 0
		var last []int
		for tstep := 0; tstep < 40; tstep++ {
			b := (tstep*7)%50 + 1
			batch := make([]int, b)
			for j := range batch {
				batch[j] = id
				id++
			}
			s.Advance(batch)
			last = s.Sample()
		}
		return last
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("samples differ at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestRTBSAdvanceAtRealTimes(t *testing.T) {
	s := mustRTBS(t, 0.1, 1000, 123)
	s.AdvanceAt(0.5, make([]int, 10))
	s.AdvanceAt(2.75, make([]int, 10))
	want := 10*math.Exp(-0.1*2.25) + 10
	if math.Abs(s.TotalWeight()-want) > 1e-9 {
		t.Errorf("W = %v, want %v", s.TotalWeight(), want)
	}
	if s.Now() != 2.75 {
		t.Errorf("Now = %v", s.Now())
	}
	defer func() {
		if recover() == nil {
			t.Error("non-increasing time did not panic")
		}
	}()
	s.AdvanceAt(2.75, nil)
}

func TestRTBSInclusionProbabilityAccessor(t *testing.T) {
	s := mustRTBS(t, 0.2, 10, 5)
	if got := s.InclusionProbability(0); got != 0 {
		t.Errorf("empty sampler inclusion = %v", got)
	}
	s.Advance(make([]int, 5)) // t=1, W=5 < n: unsaturated, C/W = 1
	if got := s.InclusionProbability(1); math.Abs(got-1) > 1e-12 {
		t.Errorf("fresh item inclusion = %v, want 1", got)
	}
	s.Advance(make([]int, 100)) // saturate
	cOverW := 10.0 / s.TotalWeight()
	if got := s.InclusionProbability(2); math.Abs(got-cOverW) > 1e-12 {
		t.Errorf("fresh item inclusion = %v, want %v", got, cOverW)
	}
	older := s.InclusionProbability(1)
	if math.Abs(older-cOverW*math.Exp(-0.2)) > 1e-12 {
		t.Errorf("older item inclusion = %v", older)
	}
}

func TestRTBSLambdaZeroBehavesLikeReservoir(t *testing.T) {
	// With λ = 0 weights never decay, so W counts items seen and the
	// saturated sample stays at exactly n with uniform inclusion n/W.
	s := mustRTBS(t, 0, 50, 42)
	total := 0
	for i := 0; i < 20; i++ {
		s.Advance(make([]int, 30))
		total += 30
		if math.Abs(s.TotalWeight()-float64(total)) > 1e-9 {
			t.Fatalf("W = %v, want %d", s.TotalWeight(), total)
		}
	}
	if got := len(s.Sample()); got != 50 {
		t.Errorf("|S| = %d", got)
	}
}

func TestRTBSFromInitialSample(t *testing.T) {
	init := []int{1, 2, 3}
	s, err := NewRTBSFrom(0.1, 10, init, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalWeight() != 3 || s.ExpectedSize() != 3 {
		t.Errorf("W=%v C=%v", s.TotalWeight(), s.ExpectedSize())
	}
	got := s.Sample()
	if len(got) != 3 {
		t.Errorf("|S₀| = %d", len(got))
	}
}

func TestRTBSEmptyBatches(t *testing.T) {
	s := mustRTBS(t, 0.1, 10, 11)
	for i := 0; i < 100; i++ {
		s.Advance(nil)
	}
	if s.TotalWeight() != 0 || len(s.Sample()) != 0 {
		t.Error("empty stream should keep an empty sample")
	}
}

// TestRTBSExpectedSampleSizeMaximal spot-checks Theorem 4.3 against T-TBS:
// in an unsaturated regime, E[|S|] for R-TBS equals W, which upper-bounds
// any property-(1) sampler, in particular T-TBS with the same λ.
func TestRTBSExpectedSampleSizeMaximal(t *testing.T) {
	const lambda, b, steps = 0.1, 20.0, 60
	// R-TBS: deterministic C = W in unsaturated regime.
	r := mustRTBS(t, lambda, 10000, 13)
	// T-TBS with target n chosen so q < 1 (i.e. genuinely sub-sampling).
	tt, err := NewTTBS[int](lambda, 150, b, xrand.New(14))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < steps; i++ {
		batch := make([]int, int(b))
		r.Advance(batch)
		tt.Advance(batch)
	}
	if rs, ts := r.ExpectedSize(), tt.ExpectedSize(); rs < ts*0.95 {
		t.Errorf("R-TBS expected size %v should dominate T-TBS %v", rs, ts)
	}
}

// TestRTBSSampleSizeVariance spot-checks Theorem 4.4: in a saturated steady
// state the realized sample size is exactly n — zero variance.
func TestRTBSSampleSizeVariance(t *testing.T) {
	s := mustRTBS(t, 0.07, 50, 15)
	for i := 0; i < 30; i++ {
		s.Advance(make([]int, 100))
	}
	for i := 0; i < 20; i++ {
		s.Advance(make([]int, 100))
		if got := len(s.Sample()); got != 50 {
			t.Fatalf("saturated sample size %d fluctuated from 50", got)
		}
	}
}
