package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestBTBSInclusionDecay(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	// Appendix A: Pr[x ∈ Sₜ′] = e^{−λ(t′−t)} for x ∈ Bₜ.
	const (
		lambda   = 0.3
		batches  = 6
		b        = 40
		replicas = 30000
	)
	perBatch := make([]float64, batches)
	for rep := 0; rep < replicas; rep++ {
		s, err := NewBTBS[int](lambda, xrand.New(uint64(rep)+4000))
		if err != nil {
			t.Fatal(err)
		}
		id := 0
		for bi := 0; bi < batches; bi++ {
			batch := make([]int, b)
			for j := range batch {
				batch[j] = id
				id++
			}
			s.Advance(batch)
		}
		for _, item := range s.Sample() {
			perBatch[item/b]++
		}
	}
	for bi := 0; bi < batches; bi++ {
		got := perBatch[bi] / (replicas * b)
		want := math.Exp(-lambda * float64(batches-bi-1))
		se := math.Sqrt(want*(1-want)/(replicas*b)) + 1e-9
		if math.Abs(got-want) > 6*se {
			t.Errorf("batch %d: inclusion %v, want %v", bi+1, got, want)
		}
	}
}

func TestBTBSEquilibriumSize(t *testing.T) {
	// Remark 1: the sample size fluctuates around b/(1−e^−λ).
	const lambda, b = 0.1, 100
	s, err := NewBTBS[int](lambda, xrand.New(50))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	const steps = 2000
	for i := 0; i < steps; i++ {
		s.Advance(make([]int, b))
		if i >= steps/2 {
			sum += float64(s.Size())
		}
	}
	avg := sum / (steps / 2)
	want := b / (1 - math.Exp(-lambda))
	if math.Abs(avg-want) > 0.05*want {
		t.Errorf("equilibrium size = %v, want ≈ %v", avg, want)
	}
}

func TestBTBSValidation(t *testing.T) {
	if _, err := NewBTBS[int](0, xrand.New(1)); err == nil {
		t.Error("λ=0 accepted")
	}
	if _, err := NewBTBS[int](0.1, nil); err == nil {
		t.Error("nil RNG accepted")
	}
}

func TestBRSBoundAndCount(t *testing.T) {
	s, err := NewBRS[int](100, xrand.New(60))
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	rng := xrand.New(61)
	for i := 0; i < 50; i++ {
		b := rng.Intn(60)
		s.Advance(make([]int, b))
		seen += b
		wantSize := seen
		if wantSize > 100 {
			wantSize = 100
		}
		if s.Size() != wantSize {
			t.Fatalf("step %d: size %d, want %d", i, s.Size(), wantSize)
		}
		if s.Seen() != seen {
			t.Fatalf("step %d: seen %d, want %d", i, s.Seen(), seen)
		}
	}
}

// TestBRSUniformity: after many batches, every item seen so far should be in
// the sample with equal probability n/W (Appendix B: B-RS is a uniform
// scheme).
func TestBRSUniformity(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const (
		n        = 10
		batches  = 5
		b        = 8
		replicas = 60000
	)
	total := batches * b
	counts := make([]float64, total)
	for rep := 0; rep < replicas; rep++ {
		s, err := NewBRS[int](n, xrand.New(uint64(rep)+8000))
		if err != nil {
			t.Fatal(err)
		}
		id := 0
		for bi := 0; bi < batches; bi++ {
			batch := make([]int, b)
			for j := range batch {
				batch[j] = id
				id++
			}
			s.Advance(batch)
		}
		for _, item := range s.Sample() {
			counts[item]++
		}
	}
	want := float64(n) / float64(total)
	se := math.Sqrt(want * (1 - want) / replicas)
	for id, cnt := range counts {
		got := cnt / replicas
		if math.Abs(got-want) > 6*se {
			t.Errorf("item %d inclusion %v, want %v", id, got, want)
		}
	}
}

func TestBRSValidation(t *testing.T) {
	if _, err := NewBRS[int](0, xrand.New(1)); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewBRS[int](5, nil); err == nil {
		t.Error("nil RNG accepted")
	}
	if _, err := NewBRSFrom(2, []int{1, 2, 3}, xrand.New(1)); err == nil {
		t.Error("oversized initial sample accepted")
	}
}

func TestSlidingWindowKeepsLastN(t *testing.T) {
	w, err := NewSlidingWindow[int](5)
	if err != nil {
		t.Fatal(err)
	}
	w.Advance([]int{1, 2, 3})
	if got := w.Sample(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("after first batch: %v", got)
	}
	w.Advance([]int{4, 5, 6, 7})
	got := w.Sample()
	want := []int{3, 4, 5, 6, 7}
	if len(got) != 5 {
		t.Fatalf("size %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("window = %v, want %v", got, want)
		}
	}
	// A batch larger than the window keeps only its tail.
	big := make([]int, 12)
	for i := range big {
		big[i] = 100 + i
	}
	w.Advance(big)
	got = w.Sample()
	for i := 0; i < 5; i++ {
		if got[i] != 107+i {
			t.Fatalf("after big batch: %v", got)
		}
	}
}

func TestSlidingWindowProperty(t *testing.T) {
	w, err := NewSlidingWindow[int](64)
	if err != nil {
		t.Fatal(err)
	}
	var all []int
	next := 0
	f := func(sz uint8) bool {
		batch := make([]int, int(sz)%100)
		for i := range batch {
			batch[i] = next
			next++
		}
		all = append(all, batch...)
		w.Advance(batch)
		got := w.Sample()
		wantLen := len(all)
		if wantLen > 64 {
			wantLen = 64
		}
		if len(got) != wantLen {
			return false
		}
		tail := all[len(all)-wantLen:]
		for i := range tail {
			if got[i] != tail[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTimeWindowExpiry(t *testing.T) {
	w, err := NewTimeWindow[int](2.5)
	if err != nil {
		t.Fatal(err)
	}
	w.AdvanceAt(1, []int{1})
	w.AdvanceAt(2, []int{2})
	w.AdvanceAt(3, []int{3})
	// Horizon 2.5 at t=3 keeps arrivals after 0.5: all three.
	if w.Size() != 3 {
		t.Fatalf("size %d, want 3", w.Size())
	}
	w.AdvanceAt(4, nil)
	// Keeps arrivals after 1.5: items 2 and 3.
	got := w.Sample()
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("window = %v", got)
	}
	w.AdvanceAt(100, nil)
	if w.Size() != 0 {
		t.Fatal("window should be empty after long silence")
	}
}

func TestWindowValidation(t *testing.T) {
	if _, err := NewSlidingWindow[int](0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewTimeWindow[int](0); err == nil {
		t.Error("horizon=0 accepted")
	}
}

func TestLambdaHelpers(t *testing.T) {
	// Paper Section 1: λ = 0.058 keeps ~10% after 40 batches.
	if got := LambdaForRetention(40, 0.10); math.Abs(got-0.0576) > 0.001 {
		t.Errorf("LambdaForRetention(40, 0.1) = %v, want ≈ 0.0576", got)
	}
	// Paper Section 1: k=150, n=1000, q=0.01 → λ ≈ 0.077.
	if got := LambdaForEntitySurvival(150, 1000, 0.01); math.Abs(got-0.077) > 0.001 {
		t.Errorf("LambdaForEntitySurvival = %v, want ≈ 0.077", got)
	}
	for _, f := range []func(){
		func() { LambdaForRetention(0, 0.5) },
		func() { LambdaForRetention(5, 0) },
		func() { LambdaForRetention(5, 1) },
		func() { LambdaForEntitySurvival(0, 10, 0.5) },
		func() { LambdaForEntitySurvival(5, 0, 0.5) },
		func() { LambdaForEntitySurvival(5, 10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid lambda helper args did not panic")
				}
			}()
			f()
		}()
	}
}
