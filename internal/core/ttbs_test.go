package core

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func TestTTBSConstructorValidation(t *testing.T) {
	rng := xrand.New(1)
	if _, err := NewTTBS[int](0, 10, 100, rng); err == nil {
		t.Error("λ = 0 accepted (T-TBS needs positive decay)")
	}
	if _, err := NewTTBS[int](0.1, 10, 0, rng); err == nil {
		t.Error("zero mean batch size accepted")
	}
	if _, err := NewTTBS[int](0.1, 10, 100, nil); err == nil {
		t.Error("nil RNG accepted")
	}
	// b < n(1−e^−λ) must be rejected (q would exceed 1).
	if _, err := NewTTBS[int](1.0, 1000, 10, rng); err == nil {
		t.Error("violated b ≥ n(1−e^−λ) accepted")
	}
	s, err := NewTTBS[int](0.1, 100, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	wantQ := 100 * (1 - math.Exp(-0.1)) / 100
	if math.Abs(s.AcceptRate()-wantQ) > 1e-12 {
		t.Errorf("q = %v, want %v", s.AcceptRate(), wantQ)
	}
}

// TestTTBSMeanSampleSize verifies Theorem 3.1(ii):
// E[Cₜ] = n + pᵗ(C₀ − n) with p = e^−λ.
func TestTTBSMeanSampleSize(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const (
		lambda   = 0.1
		n        = 100
		b        = 100
		steps    = 30
		replicas = 3000
	)
	p := math.Exp(-lambda)
	sums := make([]float64, steps+1)
	for rep := 0; rep < replicas; rep++ {
		s, err := NewTTBS[int](lambda, n, b, xrand.New(uint64(rep)+77))
		if err != nil {
			t.Fatal(err)
		}
		batch := make([]int, b)
		for step := 1; step <= steps; step++ {
			s.Advance(batch)
			sums[step] += float64(s.Size())
		}
	}
	for _, step := range []int{1, 5, 10, 30} {
		got := sums[step] / replicas
		want := float64(n) + math.Pow(p, float64(step))*(0-float64(n))
		// Sample-size s.d. is O(√n); the replica-mean s.e. is ~ √n/√replicas.
		tol := 6 * math.Sqrt(float64(n)) / math.Sqrt(replicas) * 3
		if math.Abs(got-want) > tol {
			t.Errorf("t=%d: E[C] = %v, want %v (±%v)", step, got, want, tol)
		}
	}
}

// TestTTBSTimeAverage verifies Theorem 3.1(iii): the running time-average of
// the sample size converges to n with probability 1.
func TestTTBSTimeAverage(t *testing.T) {
	const (
		lambda = 0.1
		n      = 200
		b      = 100
		steps  = 4000
	)
	s, err := NewTTBS[int](lambda, n, b, xrand.New(31))
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(32)
	var sum float64
	for i := 0; i < steps; i++ {
		bt := rng.Poisson(b) // random i.i.d. batch sizes
		s.Advance(make([]int, bt))
		sum += float64(s.Size())
	}
	avg := sum / steps
	if math.Abs(avg-n) > 0.05*n {
		t.Errorf("time-average sample size = %v, want ≈ %d", avg, n)
	}
}

// TestTTBSInclusionProperty verifies Pr[x ∈ Sₜ′] = q·e^{−λ(t′−t)} for
// x ∈ Bₜ (Section 3), which implies property (1).
func TestTTBSInclusionProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const (
		lambda   = 0.2
		n        = 50
		b        = 60
		batches  = 8
		replicas = 40000
	)
	q := float64(n) * (1 - math.Exp(-lambda)) / b
	perBatch := make([]float64, batches)
	for rep := 0; rep < replicas; rep++ {
		s, err := NewTTBS[int](lambda, n, b, xrand.New(uint64(rep)+909))
		if err != nil {
			t.Fatal(err)
		}
		id := 0
		for bi := 0; bi < batches; bi++ {
			batch := make([]int, b)
			for j := range batch {
				batch[j] = id
				id++
			}
			s.Advance(batch)
		}
		for _, item := range s.Sample() {
			perBatch[item/b]++
		}
	}
	for bi := 0; bi < batches; bi++ {
		got := perBatch[bi] / (replicas * b)
		age := float64(batches - (bi + 1))
		want := q * math.Exp(-lambda*age)
		se := math.Sqrt(want*(1-want)/(replicas*b)) + 1e-9
		if math.Abs(got-want) > 6*se {
			t.Errorf("batch %d: inclusion %v, want %v (±%v)", bi+1, got, want, 6*se)
		}
	}
}

func TestTTBSAdvanceAtRealTimes(t *testing.T) {
	s, err := NewTTBS[int](0.1, 10, 100, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	s.AdvanceAt(1.5, make([]int, 100))
	if s.Now() != 1.5 {
		t.Errorf("Now = %v", s.Now())
	}
	defer func() {
		if recover() == nil {
			t.Error("non-increasing time did not panic")
		}
	}()
	s.AdvanceAt(1.0, nil)
}

func TestTTBSFromInitialSample(t *testing.T) {
	init := make([]int, 40)
	s, err := NewTTBSFrom(0.1, 10, 100, init, xrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 40 {
		t.Errorf("initial size %d", s.Size())
	}
	// With no arrivals the sample must decay geometrically in expectation.
	for i := 0; i < 60; i++ {
		s.Advance(nil)
	}
	if s.Size() > 20 {
		t.Errorf("sample failed to decay: %d", s.Size())
	}
}
