package core

import (
	"container/heap"
	"fmt"

	"repro/internal/xrand"
)

// PriorityTimeWindow maintains a bounded uniform random sample over a
// sliding wall-clock-time window — the "subsample within the time-based
// window" alternative the paper mentions in Section 1 (citing Gemulla and
// Lehner's bounded-space time-window sampling [18]).
//
// Every arriving item receives an independent Uniform(0,1) priority; at any
// time the sample is the n unexpired items with the smallest priorities,
// which is a uniform sample without replacement of the unexpired items.
// Bounded space comes from pruning: an item can be discarded as soon as n
// *younger* items have smaller priorities, because from then on it can
// never re-enter the sample (younger items expire later). The retained
// candidate set has expected size O(n·log(W/n)) for window population W.
//
// Like all purely time-based windows, the sample forgets the past
// completely — it is a baseline, not a property-(1) sampler.
type PriorityTimeWindow[T any] struct {
	horizon float64
	n       int
	rng     *xrand.RNG
	now     float64

	items []pwItem[T] // in arrival order (oldest first)
}

type pwItem[T any] struct {
	item     T
	arrival  float64
	priority float64
}

// NewPriorityTimeWindow returns a sampler holding a uniform sample of at
// most n items among those that arrived within the last horizon time
// units.
func NewPriorityTimeWindow[T any](horizon float64, n int, rng *xrand.RNG) (*PriorityTimeWindow[T], error) {
	switch {
	case horizon <= 0:
		return nil, fmt.Errorf("core: window horizon must be positive, got %v", horizon)
	case n <= 0:
		return nil, fmt.Errorf("core: sample size must be positive, got %d", n)
	case rng == nil:
		return nil, fmt.Errorf("core: nil RNG")
	}
	return &PriorityTimeWindow[T]{horizon: horizon, n: n, rng: rng}, nil
}

// Advance processes the batch arriving at time Now()+1.
func (s *PriorityTimeWindow[T]) Advance(batch []T) { s.AdvanceAt(s.now+1, batch) }

// AdvanceAt processes a batch at real-valued time t > Now().
func (s *PriorityTimeWindow[T]) AdvanceAt(t float64, batch []T) {
	if t <= s.now {
		panic(fmt.Sprintf("core: PriorityTimeWindow.AdvanceAt time %v not after current time %v", t, s.now))
	}
	s.now = t
	// Expire: candidates are in arrival order, so expired items form a
	// prefix.
	cut := 0
	for cut < len(s.items) && s.items[cut].arrival <= t-s.horizon {
		cut++
	}
	if cut > 0 {
		s.items = append(s.items[:0], s.items[cut:]...)
	}
	for _, x := range batch {
		s.items = append(s.items, pwItem[T]{item: x, arrival: t, priority: s.rng.Float64()})
	}
	s.prune()
}

// prune removes every candidate dominated by n younger, smaller-priority
// candidates, scanning newest→oldest with a size-n max-heap of the
// smallest priorities seen so far.
func (s *PriorityTimeWindow[T]) prune() {
	if len(s.items) <= s.n {
		return
	}
	h := make(maxHeapF64, 0, s.n)
	keep := make([]bool, len(s.items))
	for i := len(s.items) - 1; i >= 0; i-- {
		p := s.items[i].priority
		if len(h) < s.n {
			keep[i] = true
			heap.Push(&h, p)
			continue
		}
		if p < h[0] {
			// i could still enter the sample when younger items expire.
			keep[i] = true
			h[0] = p
			heap.Fix(&h, 0)
		}
	}
	out := s.items[:0]
	for i, it := range s.items {
		if keep[i] {
			out = append(out, it)
		}
	}
	s.items = out
}

// maxHeapF64 is a max-heap of float64 values.
type maxHeapF64 []float64

func (h maxHeapF64) Len() int           { return len(h) }
func (h maxHeapF64) Less(i, j int) bool { return h[i] > h[j] }
func (h maxHeapF64) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *maxHeapF64) Push(x any)        { *h = append(*h, x.(float64)) }
func (h *maxHeapF64) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// Sample returns the current sample: the min(n, unexpired) items with the
// smallest priorities.
func (s *PriorityTimeWindow[T]) Sample() []T {
	return s.AppendSample(make([]T, 0, s.Size()))
}

// AppendSample appends the current sample to dst; see core.AppendSampler.
func (s *PriorityTimeWindow[T]) AppendSample(dst []T) []T {
	// Candidates are few (expected O(n log(W/n))); select the n smallest
	// priorities with a bounded scan over indices.
	type cand struct {
		idx      int
		priority float64
	}
	best := make([]cand, 0, s.n)
	worst := func() int {
		w := 0
		for i := 1; i < len(best); i++ {
			if best[i].priority > best[w].priority {
				w = i
			}
		}
		return w
	}
	for i := range s.items {
		c := cand{idx: i, priority: s.items[i].priority}
		if len(best) < s.n {
			best = append(best, c)
			continue
		}
		w := worst()
		if c.priority < best[w].priority {
			best[w] = c
		}
	}
	for _, c := range best {
		dst = append(dst, s.items[c.idx].item)
	}
	return dst
}

// Size returns the current sample size: min(n, unexpired items).
func (s *PriorityTimeWindow[T]) Size() int {
	if len(s.items) < s.n {
		return len(s.items)
	}
	return s.n
}

// ExpectedSize returns the exact current size.
func (s *PriorityTimeWindow[T]) ExpectedSize() float64 { return float64(s.Size()) }

// Candidates returns the number of retained candidate items (the memory
// footprint), expected O(n·log(W/n)).
func (s *PriorityTimeWindow[T]) Candidates() int { return len(s.items) }

// Now returns the time of the most recent batch.
func (s *PriorityTimeWindow[T]) Now() float64 { return s.now }
