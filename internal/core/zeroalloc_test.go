//go:build !race

package core

import (
	"testing"

	"repro/internal/xrand"
)

// TestIngestHotPathZeroAlloc enforces the steady-state allocation contract
// of the sharded ingest pipeline: once an R-TBS reservoir is saturated and
// its scratch buffers have grown, Advance + AppendSample allocate nothing.
// (Excluded under -race: the detector's instrumentation perturbs the
// allocation accounting.)
func TestIngestHotPathZeroAlloc(t *testing.T) {
	const n, lambda, batchSize = 5000, 0.07, 500
	s, err := NewRTBS[int](lambda, n, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]int, batchSize)
	for i := range batch {
		batch[i] = i
	}
	// Saturate and let every scratch buffer reach its high-water mark.
	for i := 0; i < 40; i++ {
		s.Advance(batch)
	}
	if !s.Saturated() {
		t.Fatal("reservoir not saturated after warmup")
	}
	buf := make([]int, 0, n+1)
	if avg := testing.AllocsPerRun(200, func() {
		s.Advance(batch)
		buf = s.AppendSample(buf[:0])
	}); avg != 0 {
		t.Fatalf("steady-state Advance+AppendSample allocates %.2f times per op, want 0", avg)
	}

	// The decaying (unsaturated) regime with a stable batch flow also runs
	// clean once capacities have stabilized: T-TBS.
	tt, err := NewTTBS[int](lambda, n, batchSize, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		tt.Advance(batch)
	}
	tbuf := make([]int, 0, 2*n)
	if avg := testing.AllocsPerRun(200, func() {
		tt.Advance(batch)
		tbuf = tt.AppendSample(tbuf[:0])
	}); avg > 0.05 {
		t.Fatalf("steady-state T-TBS Advance+AppendSample allocates %.2f times per op, want ~0", avg)
	}
}
