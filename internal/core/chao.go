package core

import (
	"fmt"

	"repro/internal/xrand"
)

// BChao is the batched, time-decayed adaptation of Chao's general-purpose
// unequal-probability sampling plan described in Appendix D (Algorithms 6
// and 7). It maintains a bounded sample of size n in which non-overweight
// items appear with probability n·wᵢ/W, tracking "overweight" items (those
// whose proportional probability would exceed 1) individually in a side set
// V until they decay back to normal.
//
// The paper includes B-Chao as the closest prior competitor to R-TBS and
// shows that it violates the relative-inclusion property (1) while the
// sample is filling up and whenever data arrives slowly relative to the
// decay rate (overweight items are over-represented); the
// `chao-violation` experiment reproduces that failure. Unlike R-TBS the
// sample size never shrinks, which is the root cause.
type BChao[T any] struct {
	lambda float64
	n      int
	rng    *xrand.RNG

	s   []T           // non-overweight sample items (weights forgotten)
	w   float64       // aggregate decayed weight of every non-overweight item seen
	v   []weighted[T] // overweight items, ascending by weight
	now float64
}

type weighted[T any] struct {
	item T
	w    float64
}

// NewBChao returns a B-Chao sampler with decay rate lambda and sample
// bound n.
func NewBChao[T any](lambda float64, n int, rng *xrand.RNG) (*BChao[T], error) {
	switch {
	case !ValidateLambda(lambda):
		return nil, fmt.Errorf("core: invalid decay rate λ = %v", lambda)
	case n <= 0:
		return nil, fmt.Errorf("core: sample size must be positive, got %d", n)
	case rng == nil:
		return nil, fmt.Errorf("core: nil RNG")
	}
	return &BChao[T]{lambda: lambda, n: n, rng: rng}, nil
}

// Advance processes the batch arriving at time Now()+1.
func (c *BChao[T]) Advance(batch []T) { c.AdvanceAt(c.now+1, batch) }

// AdvanceAt processes a batch at real-valued time t > Now(). Items within
// the batch are processed one at a time in random order, as in Algorithm 6.
func (c *BChao[T]) AdvanceAt(t float64, batch []T) {
	if t <= c.now {
		panic(fmt.Sprintf("core: BChao.AdvanceAt time %v not after current time %v", t, c.now))
	}
	d := decayFactor(c.lambda, t-c.now)
	c.now = t
	c.w *= d
	for i := range c.v {
		c.v[i].w *= d
	}

	// Get1(x, Bt): consume the batch in uniform random order.
	order := c.rng.Perm(len(batch))
	for _, bi := range order {
		c.insert(batch[bi])
	}
}

// insert processes one arriving item (body of the loop in Algorithm 6).
func (c *BChao[T]) insert(x T) {
	if len(c.s)+len(c.v) < c.n {
		// Reservoir not yet full: accept with probability 1. (This is
		// exactly where property (1) is violated: the item's weight is
		// effectively forced to equal the older items' weights.) The
		// pseudocode tests |S| < n; we test |S|+|V| < n so that the bound
		// holds even when overweight items exist while the reservoir
		// reopens — the published code never reaches that state because V
		// only fills after saturation, so the two tests agree on every
		// reachable state.
		c.s = append(c.s, x)
		c.w++
		return
	}

	pix, a, xOver := c.normalize(x)
	if c.rng.Float64() <= pix {
		// Accept x and choose a victim to eject: first try the items that
		// just transitioned out of V (each with its individual correction
		// probability), then fall back to a uniform victim from S.
		alpha := 0.0
		u := c.rng.Float64()
		victim := -1
		for idx := range a {
			alpha += (1 - float64(c.n-len(c.v))*a[idx].w/c.w) / pix
			if u <= alpha {
				victim = idx
				break
			}
		}
		if victim >= 0 {
			a = append(a[:victim], a[victim+1:]...)
		} else if len(c.s) > 0 {
			j := c.rng.Intn(len(c.s))
			c.s[j] = c.s[len(c.s)-1]
			c.s = c.s[:len(c.s)-1]
		}
		if !xOver {
			c.s = append(c.s, x)
		}
	}
	// Items that are no longer overweight rejoin S; their individual
	// weights are forgotten (only the aggregate W matters from here on).
	for i := range a {
		c.s = append(c.s, a[i].item)
	}
}

// normalize implements Algorithm 7: fold the arriving unit-weight item x
// into the aggregate weight, recompute which items are overweight, and
// return x's acceptance probability πx, the set A of items that just
// stopped being overweight, and whether x itself is overweight (in which
// case it has been added to V).
func (c *BChao[T]) normalize(x T) (pix float64, a []weighted[T], xOver bool) {
	sumV := 0.0
	for i := range c.v {
		sumV += c.v[i].w
	}
	c.w += 1 + sumV
	if float64(c.n)/c.w <= 1 {
		// x is not overweight; neither is anything in V (all weights ≤ 1,
		// so n·wz/W ≤ n/W ≤ 1).
		a = append(a, c.v...)
		c.v = c.v[:0]
		return float64(c.n) / c.w, a, false
	}

	// x is overweight: accept it with probability 1 and rebuild V by
	// peeling off the heaviest items while they remain overweight with
	// respect to the shrinking sample slot count n−|D| and aggregate W.
	c.w--
	var dSet []weighted[T] // members of D other than x, descending weight
	for len(c.v) > 0 {
		z := c.v[len(c.v)-1] // GetMax(V): v is ascending, the max is last
		if float64(c.n-(len(dSet)+1))*z.w/c.w > 1 {
			c.v = c.v[:len(c.v)-1]
			c.w -= z.w
			dSet = append(dSet, z)
			continue
		}
		break
	}
	// Everything still in v is no longer overweight.
	a = append(a, c.v...)
	c.v = c.v[:0]
	// V ← D, kept ascending: dSet was popped in descending weight order,
	// and x (weight 1) is at least as heavy as every decayed item.
	for i := len(dSet) - 1; i >= 0; i-- {
		c.v = append(c.v, dSet[i])
	}
	c.v = append(c.v, weighted[T]{item: x, w: 1})
	return 1, a, true
}

// Sample returns a copy of the current sample S ∪ V.
func (c *BChao[T]) Sample() []T {
	return c.AppendSample(make([]T, 0, len(c.s)+len(c.v)))
}

// AppendSample appends the current sample S ∪ V to dst; see
// core.AppendSampler.
func (c *BChao[T]) AppendSample(dst []T) []T {
	dst = append(dst, c.s...)
	for i := range c.v {
		dst = append(dst, c.v[i].item)
	}
	return dst
}

// Size returns the exact current sample size |S| + |V|.
func (c *BChao[T]) Size() int { return len(c.s) + len(c.v) }

// ExpectedSize returns the exact current size.
func (c *BChao[T]) ExpectedSize() float64 { return float64(c.Size()) }

// Overweight returns the number of currently overweight items (|V|).
func (c *BChao[T]) Overweight() int { return len(c.v) }

// TotalWeight returns W, the aggregate decayed weight of all non-overweight
// items seen so far.
func (c *BChao[T]) TotalWeight() float64 { return c.w }

// DecayRate returns λ.
func (c *BChao[T]) DecayRate() float64 { return c.lambda }

// Now returns the time of the most recent batch.
func (c *BChao[T]) Now() float64 { return c.now }
