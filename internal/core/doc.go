// Package core implements the temporally-biased sampling schemes of
// Hentschel, Haas and Tian, "Temporally-Biased Sampling for Online Model
// Management" (EDBT 2018), together with the baseline schemes the paper
// compares against.
//
// All samplers consume a stream of batches B₁, B₂, … arriving at times
// t = 1, 2, … (or at arbitrary real-valued times via AdvanceAt) and maintain
// a sample Sₜ of the items seen so far. The time-biased schemes enforce the
// paper's relative-inclusion property (1): for items i ∈ B_t′ and j ∈ B_t″
// with t′ ≤ t″,
//
//	Pr[i ∈ Sₜ] / Pr[j ∈ Sₜ] = exp(−λ (t″ − t′)),
//
// so an item's appearance probability decays exponentially at user-chosen
// rate λ while items of equal age remain exchangeable.
//
// The samplers provided are:
//
//   - RTBS — Reservoir-based Time-Biased Sampling (Algorithm 2 + the
//     Downsample subroutine, Algorithm 3). The paper's primary contribution:
//     exact decay control, a hard upper bound n on the sample size, and
//     support for arbitrary unknown batch-size sequences, via latent
//     "fractional" samples. Maximizes expected sample size (Theorem 4.3) and
//     minimizes sample-size variance (Theorem 4.4).
//   - TTBS — Targeted-size Time-Biased Sampling (Algorithm 1). Simple and
//     embarrassingly parallel, but requires a known, constant mean batch
//     size and controls the sample size only probabilistically
//     (Theorem 3.1).
//   - BTBS — plain Bernoulli time-biased sampling (Appendix A); decay
//     control with no sample-size control.
//   - BRS — batched classical reservoir sampling (Appendix B); bounded
//     uniform sample, no time biasing. This is the paper's "Unif" baseline.
//   - BChao — a batched, time-decayed adaptation of Chao's
//     unequal-probability sampling plan (Appendix D); bounds the sample size
//     but violates property (1) during fill-up and under slow arrivals.
//   - SlidingWindow / TimeWindow — the "SW" baseline: keep the last n items
//     (or everything younger than a horizon).
//
// All samplers are deterministic given an *xrand.RNG seed, single-goroutine
// objects. This package is internal: external consumers use the repro/tbs
// façade, which constructs every scheme by registry name, wraps it for
// concurrent use (tbs.Concurrent), and unifies the per-scheme snapshot
// types below behind one checkpoint envelope. The distributed variants
// live in internal/dist.
package core
