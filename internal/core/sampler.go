package core

import "math"

// Sampler is the interface shared by every sampling scheme in this package.
// Implementations are not safe for concurrent use.
type Sampler[T any] interface {
	// Advance feeds the next batch to the sampler, advancing the clock by
	// one time unit (Δ = 1). The batch may be empty. The sampler does not
	// retain the batch slice.
	Advance(batch []T)

	// Sample returns a freshly realized copy of the current sample Sₜ.
	// For schemes with a latent fractional state (R-TBS) the partial item's
	// membership is re-randomized on every call; all other items are stable
	// between Advance calls.
	Sample() []T

	// ExpectedSize returns E[|Sₜ|]: the sample weight Cₜ for fractional
	// schemes, or the exact current size for integral ones.
	ExpectedSize() float64
}

// AppendSampler is implemented by samplers whose realization can be
// appended into a caller-owned buffer. AppendSample(dst[:0]) draws exactly
// the same realization (consuming the same RNG state) as Sample, but reuses
// dst's backing array when it has capacity — the read-side half of the
// steady-state zero-allocation ingest path. Every scheme in this package
// implements it; Sample is a thin copying wrapper over it.
type AppendSampler[T any] interface {
	// AppendSample appends a freshly realized sample to dst and returns
	// the extended slice. Items are value copies; for reference-typed T
	// (slices, pointers) the pointees are shared with sampler storage.
	AppendSample(dst []T) []T
}

// TimedSampler is implemented by samplers that support arbitrary real-valued
// batch-arrival times (Section 2: "our results can be applied to arbitrary
// sequences of real-valued batch arrival times").
type TimedSampler[T any] interface {
	Sampler[T]

	// AdvanceAt feeds a batch arriving at time t, which must be strictly
	// greater than the previous arrival time. Weights decay by
	// exp(−λ·(t − prev)) before the batch is incorporated.
	AdvanceAt(t float64, batch []T)

	// Now returns the time of the most recent batch.
	Now() float64
}

// Weighted is implemented by the time-biased samplers, exposing the
// weight bookkeeping that the paper's analysis is phrased in.
type Weighted interface {
	// TotalWeight returns Wₜ = Σⱼ Bⱼ·exp(−λ(t−j)), the decayed weight of
	// every item seen so far.
	TotalWeight() float64

	// DecayRate returns λ.
	DecayRate() float64
}

// decayFactor returns exp(−λ·dt), clamped to [0, 1] for safety under tiny
// negative dt produced by floating-point noise.
func decayFactor(lambda, dt float64) float64 {
	f := math.Exp(-lambda * dt)
	if f > 1 {
		return 1
	}
	return f
}

// frac returns the fractional part of x.
func frac(x float64) float64 { return x - math.Floor(x) }

// ValidateLambda reports whether lambda is a usable decay rate (finite and
// nonnegative; λ = 0 degrades gracefully to no decay).
func ValidateLambda(lambda float64) bool {
	return lambda >= 0 && !math.IsInf(lambda, 1) && !math.IsNaN(lambda)
}

// LambdaForRetention returns the decay rate λ such that an item's appearance
// probability after k batches is p times its initial appearance probability.
// For example, LambdaForRetention(40, 0.10) ≈ 0.058 reproduces the paper's
// "around 10% of the data items from 40 batches ago are included" example
// (Section 1).
func LambdaForRetention(k int, p float64) float64 {
	if k <= 0 || p <= 0 || p >= 1 {
		panic("core: LambdaForRetention requires k > 0 and 0 < p < 1")
	}
	return -math.Log(p) / float64(k)
}

// LambdaForEntitySurvival returns λ such that if an entity was represented
// by n items k batches ago, at least one of those items remains in the
// sample with probability q (assuming inclusion probability 1 at arrival).
// This reproduces the paper's Section 1 example: k = 150, n = 1000, q = 0.01
// gives λ ≈ 0.077.
func LambdaForEntitySurvival(k, n int, q float64) float64 {
	if k <= 0 || n <= 0 || q <= 0 || q >= 1 {
		panic("core: LambdaForEntitySurvival requires k, n > 0 and 0 < q < 1")
	}
	return -math.Log(1-math.Pow(1-q, 1/float64(n))) / float64(k)
}
