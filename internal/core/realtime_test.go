package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// TestRTBSRealTimeInvariants drives R-TBS with random real-valued arrival
// times and random batch sizes and checks the structural invariants after
// every step (testing/quick property test).
func TestRTBSRealTimeInvariants(t *testing.T) {
	f := func(seed uint64, steps []uint16) bool {
		s, err := NewRTBS[int](0.4, 25, xrand.New(seed))
		if err != nil {
			return false
		}
		now := 0.0
		id := 0
		for _, raw := range steps {
			// Random positive gap in (0, ~6.5] and batch size in [0, 63].
			gap := float64(raw%100)/16 + 0.01
			b := int(raw % 64)
			now += gap
			batch := make([]int, b)
			for i := range batch {
				batch[i] = id
				id++
			}
			s.AdvanceAt(now, batch)
			c, w := s.ExpectedSize(), s.TotalWeight()
			if c < -1e-9 || w < -1e-9 || c > w+1e-9 || c > 25+1e-9 {
				return false
			}
			if s.Latent().NumFull() != int(math.Floor(c+1e-12)) {
				return false
			}
			if s.Latent().HasPartial() != (frac(c) > 1e-12) {
				// Allow for exact-integer weights where no partial exists.
				if math.Abs(frac(c)) > 1e-9 && math.Abs(frac(c)-1) > 1e-9 {
					return false
				}
			}
			if got := len(s.Sample()); got > 25 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestRTBSRealTimeDecayLaw: the inclusion-probability law holds with
// irregular arrival spacing too — Pr[i ∈ S] = (C/W)·e^{−λ·(now−arrival)}.
func TestRTBSRealTimeDecayLaw(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const (
		lambda   = 0.25
		n        = 30
		replicas = 40000
	)
	// Irregular schedule: (time, size) pairs.
	schedule := []struct {
		t float64
		b int
	}{
		{0.7, 12}, {1.1, 20}, {3.9, 25}, {4.0, 6}, {7.5, 18},
	}
	totalItems := 0
	for _, s := range schedule {
		totalItems += s.b
	}
	counts := make([]float64, totalItems)
	var lastC, lastW float64
	for rep := 0; rep < replicas; rep++ {
		s, err := NewRTBS[int](lambda, n, xrand.New(uint64(rep)+120000))
		if err != nil {
			t.Fatal(err)
		}
		id := 0
		for _, st := range schedule {
			batch := make([]int, st.b)
			for i := range batch {
				batch[i] = id
				id++
			}
			s.AdvanceAt(st.t, batch)
		}
		for _, item := range s.Sample() {
			counts[item]++
		}
		lastC, lastW = s.ExpectedSize(), s.TotalWeight()
	}
	finalT := schedule[len(schedule)-1].t
	id := 0
	for _, st := range schedule {
		for j := 0; j < st.b; j++ {
			got := counts[id] / replicas
			want := lastC / lastW * math.Exp(-lambda*(finalT-st.t))
			se := math.Sqrt(want*(1-want)/replicas) + 1e-9
			if math.Abs(got-want) > 6*se {
				t.Errorf("item %d (arrived %v): inclusion %v, want %v", id, st.t, got, want)
			}
			id++
		}
	}
}

// TestBTBSRealTimeMatchesTwoSteps: decaying over one gap of length a+b
// must equal decaying over consecutive gaps a then b in expectation.
func TestBTBSRealTimeMatchesTwoSteps(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const lambda = 0.3
	const items = 4000
	count := func(split bool) int {
		s, err := NewBTBS[int](lambda, xrand.New(77))
		if err != nil {
			t.Fatal(err)
		}
		s.AdvanceAt(1, make([]int, items))
		if split {
			s.AdvanceAt(2.3, nil)
			s.AdvanceAt(4.0, nil)
		} else {
			s.AdvanceAt(4.0, nil)
		}
		return s.Size()
	}
	want := float64(items) * math.Exp(-lambda*3)
	for _, split := range []bool{true, false} {
		got := float64(count(split))
		if math.Abs(got-want) > 6*math.Sqrt(want) {
			t.Errorf("split=%v: size %v, want ≈ %v", split, got, want)
		}
	}
}
