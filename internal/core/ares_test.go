package core

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func TestAResValidation(t *testing.T) {
	if _, err := NewARes[int](-1, 10, xrand.New(1)); err == nil {
		t.Error("negative λ accepted")
	}
	if _, err := NewARes[int](0.1, 0, xrand.New(1)); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewARes[int](0.1, 5, nil); err == nil {
		t.Error("nil RNG accepted")
	}
}

func TestAResBoundAndFillUp(t *testing.T) {
	s, err := NewARes[int](0.2, 50, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	rng := xrand.New(3)
	for i := 0; i < 100; i++ {
		b := rng.Intn(20)
		s.Advance(make([]int, b))
		seen += b
		want := seen
		if want > 50 {
			want = 50
		}
		if s.Size() != want {
			t.Fatalf("step %d: size %d, want %d", i, s.Size(), want)
		}
	}
	if got := len(s.Sample()); got != 50 {
		t.Errorf("|Sample| = %d", got)
	}
}

// TestAResRecencyBias: with a positive decay rate, recent batches must be
// much better represented than old ones.
func TestAResRecencyBias(t *testing.T) {
	const (
		lambda  = 0.2
		n       = 100
		b       = 100
		batches = 20
	)
	s, err := NewARes[int](lambda, n, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	id := 0
	for bi := 0; bi < batches; bi++ {
		batch := make([]int, b)
		for i := range batch {
			batch[i] = id
			id++
		}
		s.Advance(batch)
	}
	var oldHalf, newHalf int
	for _, item := range s.Sample() {
		if item < b*batches/2 {
			oldHalf++
		} else {
			newHalf++
		}
	}
	if newHalf < 3*oldHalf {
		t.Errorf("recency bias too weak: old %d vs new %d", oldHalf, newHalf)
	}
}

// TestAResViolatesProperty1 demonstrates the Section 7 claim: A-Res
// controls acceptance probabilities, not appearance probabilities, so the
// batch-to-batch inclusion ratio deviates from e^{−λ} during fill-up.
// (R-TBS under the identical schedule satisfies the ratio; see
// TestRTBSRelativeInclusion.)
func TestAResViolatesProperty1(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const (
		lambda   = 0.5
		n        = 40
		b        = 10
		batches  = 2
		replicas = 20000
	)
	// Two small batches into a large reservoir: under property (1) the
	// inclusion ratio of batch 1 to batch 2 must be e^{−0.5} ≈ 0.61, but
	// A-Res keeps everything during fill-up, forcing the ratio to 1.
	var older, newer float64
	for rep := 0; rep < replicas; rep++ {
		s, err := NewARes[int](lambda, n, xrand.New(uint64(rep)+31000))
		if err != nil {
			t.Fatal(err)
		}
		b1 := make([]int, b)
		b2 := make([]int, b)
		for i := range b1 {
			b1[i] = i
			b2[i] = b + i
		}
		s.Advance(b1)
		s.Advance(b2)
		for _, item := range s.Sample() {
			if item < b {
				older++
			} else {
				newer++
			}
		}
	}
	ratio := older / newer
	if math.Abs(ratio-1) > 0.02 {
		t.Fatalf("fill-up ratio = %v, expected ≈ 1 (the violation)", ratio)
	}
	if want := math.Exp(-lambda); math.Abs(ratio-want) < 0.1 {
		t.Fatalf("ratio %v unexpectedly satisfies property (1)", ratio)
	}
}

// TestAResSaturatedDecayApproximate: once saturated with steady arrivals,
// A-Res's inclusion ratios are in the right ballpark (it is, after all, an
// exponential time-biasing scheme) — this documents that the violation is
// about exactness, not direction.
func TestAResSaturatedDecayApproximate(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const (
		lambda   = 0.1
		n        = 20
		b        = 40
		batches  = 10
		replicas = 20000
	)
	perBatch := make([]float64, batches)
	for rep := 0; rep < replicas; rep++ {
		s, err := NewARes[int](lambda, n, xrand.New(uint64(rep)+32000))
		if err != nil {
			t.Fatal(err)
		}
		id := 0
		for bi := 0; bi < batches; bi++ {
			batch := make([]int, b)
			for i := range batch {
				batch[i] = id
				id++
			}
			s.Advance(batch)
		}
		for _, item := range s.Sample() {
			perBatch[item/b]++
		}
	}
	// Monotonic recency bias.
	for bi := 0; bi < batches-1; bi++ {
		if perBatch[bi] > perBatch[bi+1] {
			t.Errorf("batch %d more represented than batch %d", bi+1, bi+2)
		}
	}
}

func TestAResAdvanceAtPanicsOnPast(t *testing.T) {
	s, err := NewARes[int](0.1, 5, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	s.AdvanceAt(3, []int{1})
	defer func() {
		if recover() == nil {
			t.Error("no panic on non-increasing time")
		}
	}()
	s.AdvanceAt(3, nil)
}
