// Naive Bayes over a recurring-context message stream (the paper's Usenet2
// scenario, Section 6.4).
//
// Run with:
//
//	go run ./examples/textstream
//
// A simulated user reads a stream of messages and marks them interesting or
// not; the user's interest flips between topics every 300 messages, and old
// interests recur. A multinomial Naive Bayes model retrained on each
// sampling scheme's sample predicts the user's reaction to each incoming
// batch of 50 messages.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/datagen"
	"repro/internal/experiments"
)

func main() {
	cfg := experiments.NBConfig{
		SampleSize: 300,
		BatchSize:  50,
		Lambda:     0.3,
		Messages:   1500,
		Runs:       5,
		Seed:       23,
	}
	schemes := []experiments.SchemeSpec[datagen.Doc]{
		experiments.RTBSScheme[datagen.Doc]("R-TBS", cfg.Lambda, cfg.SampleSize),
		experiments.SWScheme[datagen.Doc](cfg.SampleSize),
		experiments.UnifScheme[datagen.Doc](cfg.SampleSize),
	}
	outcomes, err := experiments.RunNaiveBayes(cfg, schemes)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("misprediction % per batch (interest flips at t=7,13,19,25):")
	for _, o := range outcomes {
		fmt.Printf("%-6s %s\n", o.Name, spark(o.Series))
	}
	fmt.Println()
	for _, o := range outcomes {
		fmt.Printf("%-6s mean miss %5.1f%%   20%% ES %5.1f%%\n", o.Name, o.Err, o.ES)
	}
	fmt.Println("\npaper (Fig. 13): miss 26.5/30.0/29.5 and ES 43.3/52.7/42.7 for R-TBS/SW/Unif")
}

// spark renders a series as a compact text sparkline.
func spark(xs []float64) string {
	levels := []rune("▁▂▃▄▅▆▇█")
	max := 1.0
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	var b strings.Builder
	for _, x := range xs {
		idx := int(x / max * float64(len(levels)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}
