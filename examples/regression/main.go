// Online linear-regression retraining with saturated vs unsaturated
// reservoirs.
//
// Run with:
//
//	go run ./examples/regression
//
// Reproduces the Section 6.3 scenario: a linear model whose true
// coefficients flip periodically. The twist studied here is the paper's
// "more data is not always better" point: an R-TBS reservoir that never
// fills (n = 1600 with λ = 0.07 and batches of 100 stabilizes near 1479
// items) still beats a *full* sliding window and uniform reservoir of 1600,
// because its old/new data mix is better balanced.
package main

import (
	"fmt"
	"log"

	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/tbs"
)

func main() {
	for _, n := range []int{1000, 1600} {
		cfg := experiments.RegressionConfig{
			SampleSize: n,
			Schedule:   datagen.Periodic{Delta: 10, Eta: 10},
			Steps:      50,
			Runs:       5,
			Seed:       11,
		}
		schemes := []experiments.SchemeSpec[datagen.Obs]{
			experiments.RTBSScheme[datagen.Obs]("R-TBS", 0.07, n),
			experiments.SWScheme[datagen.Obs](n),
			experiments.UnifScheme[datagen.Obs](n),
		}
		outcomes, err := experiments.RunRegression(cfg, schemes)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sample budget n = %d:\n", n)
		for _, o := range outcomes {
			fmt.Printf("  %-6s mean MSE %5.2f   10%% ES %5.2f\n", o.Name, o.Err, o.ES)
		}
		fmt.Println()
	}

	// Show the unsaturated steady state directly: with λ = 0.07 and
	// batches of 100, the total weight converges to 100/(1−e^−0.07) ≈ 1479,
	// below the n = 1600 bound, so the R-TBS sample never fills.
	s, err := tbs.New[int]("rtbs", tbs.Lambda(0.07), tbs.MaxSize(1600), tbs.Seed(3))
	if err != nil {
		log.Fatal(err)
	}
	for t := 0; t < 200; t++ {
		s.Advance(make([]int, 100))
	}
	w, _, _ := tbs.Weight(s)
	fmt.Printf("R-TBS steady state with n=1600: W = %.0f, C = %.0f (paper: ≈1479), saturated = %v\n",
		w, s.ExpectedSize(), w >= 1600)
}
