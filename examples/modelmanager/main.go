// End-to-end online model management: temporally-biased sampling + drift-
// triggered retraining.
//
// Run with:
//
//	go run ./examples/modelmanager
//
// The paper's pipeline is: maintain an R-TBS sample, score the deployed
// model on each incoming batch, and retrain from the sample when needed.
// "When to retrain" is orthogonal to the sampling problem (Section 1); the
// manage package provides three policies. This example compares them on
// the kNN workload: retraining on every batch is the accuracy ceiling but
// costs a model build per batch; a drift detector gets close to that
// ceiling with a fraction of the retraining work, and R-TBS's time-biased
// sample is what makes the freshly triggered retrain effective.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/datagen"
	"repro/internal/manage"
	"repro/internal/metrics"
	"repro/internal/ml"
	"repro/internal/xrand"
	"repro/tbs"
)

func main() {
	type policyCase struct {
		name   string
		policy func() manage.Policy
	}
	cases := []policyCase{
		{"retrain always", func() manage.Policy { return manage.Always{} }},
		{"retrain every 10", func() manage.Policy { return manage.Every{K: 10} }},
		{"on drift (2σ)", func() manage.Policy {
			return &manage.OnDrift{Window: 8, Factor: 2, MinObs: 3, MaxStale: 25}
		}},
	}

	fmt.Println("kNN on a Periodic(10,10) drifting stream, R-TBS sample (λ=0.07, n=500):")
	fmt.Printf("%-18s  %10s  %10s\n", "policy", "mean miss%", "retrains")
	for _, pc := range cases {
		miss, retrains, err := run(pc.policy())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s  %10.1f  %10d\n", pc.name, miss, retrains)
	}
	fmt.Println("\nthe drift policy should approach 'always' accuracy with far fewer retrains")
}

func run(policy manage.Policy) (missRate float64, retrains int, err error) {
	gen, err := datagen.NewGMM(datagen.GMMConfig{
		Schedule: datagen.Periodic{Delta: 10, Eta: 10},
		Warmup:   30,
	}, xrand.New(5))
	if err != nil {
		return 0, 0, err
	}
	// A tbs.Sampler satisfies manage's sampler interface directly.
	sampler, err := tbs.New[datagen.Point]("rtbs",
		tbs.Lambda(0.07), tbs.MaxSize(500), tbs.Seed(6))
	if err != nil {
		return 0, 0, err
	}
	train := func(sample []datagen.Point) (*ml.KNN, error) {
		m, err := ml.NewKNN(7)
		if err != nil {
			return nil, err
		}
		xs := make([][]float64, len(sample))
		ys := make([]int, len(sample))
		for i, p := range sample {
			xs[i] = []float64{p.X[0], p.X[1]}
			ys[i] = p.Class
		}
		return m, m.Fit(xs, ys)
	}
	eval := func(m *ml.KNN, batch []datagen.Point) float64 {
		wrong := 0
		for _, p := range batch {
			if m.Predict([]float64{p.X[0], p.X[1]}) != p.Class {
				wrong++
			}
		}
		return 100 * float64(wrong) / float64(len(batch))
	}
	mgr, err := manage.New(sampler, train, eval, policy)
	if err != nil {
		return 0, 0, err
	}
	var errs []float64
	for t := 1; t <= 110; t++ {
		e, err := mgr.Step(gen.Batch(t, 100))
		if err != nil {
			return 0, 0, err
		}
		if t > 30 && !math.IsNaN(e) {
			errs = append(errs, e)
		}
	}
	return metrics.Mean(errs), mgr.Retrains(), nil
}
