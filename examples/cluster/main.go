// Distributed sampling on the simulated cluster: compare the design choices
// of Section 5 of the paper.
//
// Run with:
//
//	go run ./examples/cluster
//
// D-R-TBS must coordinate insert/delete decisions across workers while
// keeping the reservoir bounded. This example processes the same stream
// through four D-R-TBS configurations and D-T-TBS, printing the virtual
// per-batch runtime of each — the Figure 7 comparison — plus the reservoir
// balance across workers.
package main

import (
	"fmt"
	"log"

	"repro/internal/dist"
)

func main() {
	const (
		workers = 12
		lambda  = 0.07
		batch   = 10000 // stands in for 10M at CostScale 1000
		resv    = 20000 // stands in for 20M
		scale   = 1000
		rounds  = 40
	)
	type variant struct {
		name string
		dec  dist.Decisions
		st   dist.StoreKind
		join dist.JoinKind
	}
	variants := []variant{
		{"Cent,KV,RJ", dist.Centralized, dist.KeyValue, dist.RepartitionJoin},
		{"Cent,KV,CJ", dist.Centralized, dist.KeyValue, dist.CoLocatedJoin},
		{"Cent,CP   ", dist.Centralized, dist.CoPartitioned, dist.CoLocatedJoin},
		{"Dist,CP   ", dist.Distributed, dist.CoPartitioned, dist.CoLocatedJoin},
	}

	fmt.Println("per-batch virtual runtime (batch 10M items, reservoir 20M, 12 workers):")
	for i, v := range variants {
		d, err := dist.NewDRTBS(dist.Config{
			Workers: workers, Lambda: lambda, Reservoir: resv,
			Decisions: v.dec, Store: v.st, Join: v.join,
			CostScale: scale, Seed: uint64(i + 1),
		})
		if err != nil {
			log.Fatal(err)
		}
		var last float64
		id := 0
		for r := 0; r < rounds; r++ {
			items := make([]dist.Item, batch)
			for j := range items {
				items[j] = dist.Item(id)
				id++
			}
			last = d.ProcessBatch(dist.Partition(items, workers))
		}
		fmt.Printf("  D-R-TBS (%s)  %6.2f s/batch   sample %d items, W=%.0f\n",
			v.name, last, len(d.Sample()), d.TotalWeight())
		if v.st == dist.CoPartitioned && v.dec == dist.Distributed {
			fmt.Printf("    reservoir balance across workers: %v\n", d.PartitionCounts())
		}
	}

	dt, err := dist.NewDTTBS(dist.Config{
		Workers: workers, Lambda: lambda, Reservoir: resv,
		CostScale: scale, Seed: 99,
	}, batch)
	if err != nil {
		log.Fatal(err)
	}
	var last float64
	id := 0
	for r := 0; r < rounds; r++ {
		items := make([]dist.Item, batch)
		for j := range items {
			items[j] = dist.Item(id)
			id++
		}
		last = dt.ProcessBatch(dist.Partition(items, workers))
	}
	fmt.Printf("  D-T-TBS (Dist,CP)  %6.2f s/batch   sample %d items\n", last, dt.Size())
	fmt.Println("\npaper (Fig. 7): ≈45 / ≈22 / ≈8.5 / ≈5.3 / ≈1.5 s")
}
