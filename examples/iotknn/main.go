// IoT-style kNN classification over an evolving sensor stream.
//
// Run with:
//
//	go run ./examples/iotknn
//
// The scenario follows Section 6.2 of the paper: a Gaussian-mixture stream
// whose class frequencies flip between a "normal" and an "abnormal" regime
// (think of a fleet of sensors whose failure signature appears during an
// incident and recurs later). A kNN classifier is retrained on the current
// sample before every batch. We compare three sampling strategies with the
// same memory budget:
//
//   - R-TBS: exponential time-biasing — adapts to changes and still keeps a
//     little old data, so recurring regimes are recognized instantly;
//   - SW: a sliding window of the newest items — adapts fast but forgets,
//     so every regime change causes an error spike;
//   - Unif: a uniform reservoir — never adapts.
package main

import (
	"fmt"
	"log"

	"repro/internal/datagen"
	"repro/internal/experiments"
)

func main() {
	cfg := experiments.KNNConfig{
		SampleSize: 1000,
		Schedule:   datagen.Periodic{Delta: 10, Eta: 10}, // 10 normal, 10 abnormal, repeat
		Steps:      40,
		Runs:       5,
		Seed:       7,
	}
	schemes := []experiments.SchemeSpec[datagen.Point]{
		experiments.RTBSScheme[datagen.Point]("R-TBS", 0.07, cfg.SampleSize),
		experiments.SWScheme[datagen.Point](cfg.SampleSize),
		experiments.UnifScheme[datagen.Point](cfg.SampleSize),
	}
	outcomes, err := experiments.RunKNN(cfg, schemes)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("misclassification % by batch (lower is better):")
	fmt.Printf("%4s  %8s  %8s  %8s\n", "t", "R-TBS", "SW", "Unif")
	for t := 0; t < cfg.Steps; t += 2 {
		fmt.Printf("%4d  %8.1f  %8.1f  %8.1f\n",
			t+1, outcomes[0].Series[t], outcomes[1].Series[t], outcomes[2].Series[t])
	}
	fmt.Println()
	for _, o := range outcomes {
		fmt.Printf("%-6s mean miss %5.1f%%   10%% expected shortfall %5.1f%%\n",
			o.Name, o.Err, o.ES)
	}
	fmt.Println("\nR-TBS should match SW on accuracy while avoiding SW's post-change spikes")
	fmt.Println("(compare the expected-shortfall column), and beat Unif on both.")
}
