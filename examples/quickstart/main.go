// Quickstart: maintain a temporally-biased sample over a stream of batches
// using the public tbs API.
//
// Run with:
//
//	go run ./examples/quickstart
//
// R-TBS (Reservoir-based Time-Biased Sampling) guarantees that (i) the
// sample never exceeds its bound, and (ii) an item's probability of still
// being in the sample decays as exp(−λ·age) — so retraining on the sample
// emphasizes recent data without completely forgetting the past.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/tbs"
)

func main() {
	const (
		lambda = 0.1 // decay rate per batch: e^−0.1 ≈ 90% weight retained
		bound  = 50  // hard cap on the sample size
	)
	// Samplers are constructed by registry name; tbs.Schemes() lists what
	// is available.
	fmt.Print("registered schemes:")
	for _, s := range tbs.Schemes() {
		fmt.Printf(" %s", s.Name)
	}
	fmt.Println()

	sampler, err := tbs.New[string]("rtbs",
		tbs.Lambda(lambda), tbs.MaxSize(bound), tbs.Seed(42))
	if err != nil {
		log.Fatal(err)
	}

	// Feed 20 batches of 10 items each.
	for t := 1; t <= 20; t++ {
		batch := make([]string, 10)
		for i := range batch {
			batch[i] = fmt.Sprintf("item-%d-%d", t, i)
		}
		sampler.Advance(batch)
	}

	sample := sampler.Sample()
	totalW, _, _ := tbs.Weight(sampler)
	fmt.Printf("after 20 batches: |S| = %d (bound %d), W = %.1f\n",
		len(sample), bound, totalW)

	// Count sample items per batch: recent batches dominate, old ones
	// linger with exponentially small probability.
	perBatch := map[string]int{}
	for _, it := range sample {
		batchTag := it[:strings.LastIndex(it, "-")] // "item-T-I" → "item-T"
		perBatch[batchTag]++
	}
	for t := 16; t <= 20; t++ {
		fmt.Printf("batch %d contributes %d items\n", t, perBatch[fmt.Sprintf("item-%d", t)])
	}

	// The decay rate can be derived from retention goals instead of picked
	// by hand (Section 1 of the paper):
	fmt.Printf("λ to keep 10%% of items after 40 batches: %.3f\n",
		tbs.LambdaForRetention(40, 0.10))

	// Theoretical inclusion probability of an item that arrived at t = 10:
	// (Cₜ/Wₜ)·exp(−λ·age) (equation (4)).
	incl, _ := tbs.InclusionProbability(sampler, 10)
	fmt.Printf("theoretical inclusion probability of a batch-10 item now: %.4f\n", incl)
}
