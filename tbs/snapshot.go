package tbs

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
)

// SnapshotVersion is the current checkpoint-envelope format version.
const SnapshotVersion = 1

// Snapshot is the unified checkpoint envelope (paper Section 5.1:
// implementations "periodically checkpoint the sample as well as other
// system state variables to ensure fault tolerance"). It is a tagged union:
// Scheme names the sampling scheme and State carries that scheme's complete
// state — sample items, weights, clock, and RNG — JSON-encoded. The
// envelope itself serializes cleanly with both encoding/json and
// encoding/gob; the item type T must be JSON-serializable.
type Snapshot struct {
	Scheme  string `json:"scheme"`
	Version int    `json:"version"`
	State   []byte `json:"state"`
}

// encodeState wraps a scheme-specific state value into the envelope.
func encodeState(scheme string, state any) (Snapshot, error) {
	b, err := json.Marshal(state)
	if err != nil {
		return Snapshot{}, fmt.Errorf("tbs: snapshot %s: %w", scheme, err)
	}
	return Snapshot{Scheme: scheme, Version: SnapshotVersion, State: b}, nil
}

// decodeState unmarshals the envelope payload into a scheme-specific state.
func decodeState[S any](snap Snapshot) (S, error) {
	var st S
	if err := json.Unmarshal(snap.State, &st); err != nil {
		return st, fmt.Errorf("tbs: restore %s: %w", snap.Scheme, err)
	}
	return st, nil
}

// Restore reconstructs a sampler from a checkpoint envelope, validating the
// snapshot's structural invariants. The restored sampler continues the
// exact stochastic process of the snapshotted one: feeding both the same
// future batches yields identical samples. T must match the item type the
// snapshot was taken with.
func Restore[T any](snap Snapshot) (Sampler[T], error) {
	if snap.Version != SnapshotVersion {
		return nil, fmt.Errorf("tbs: unsupported snapshot version %d (want %d)", snap.Version, SnapshotVersion)
	}
	info, err := Lookup(snap.Scheme)
	if err != nil {
		return nil, err
	}
	switch info.Name {
	case "rtbs":
		st, err := decodeState[core.RTBSSnapshot[T]](snap)
		if err != nil {
			return nil, err
		}
		u, err := core.RestoreRTBS(st)
		if err != nil {
			return nil, err
		}
		return wrapRTBS(u), nil
	case "ttbs":
		st, err := decodeState[core.TTBSSnapshot[T]](snap)
		if err != nil {
			return nil, err
		}
		u, err := core.RestoreTTBS(st)
		if err != nil {
			return nil, err
		}
		return wrapTTBS(u), nil
	case "btbs":
		st, err := decodeState[core.BTBSSnapshot[T]](snap)
		if err != nil {
			return nil, err
		}
		u, err := core.RestoreBTBS(st)
		if err != nil {
			return nil, err
		}
		return wrapBTBS(u), nil
	case "brs":
		st, err := decodeState[core.BRSSnapshot[T]](snap)
		if err != nil {
			return nil, err
		}
		u, err := core.RestoreBRS(st)
		if err != nil {
			return nil, err
		}
		return wrapBRS(u), nil
	case "bchao":
		st, err := decodeState[core.BChaoSnapshot[T]](snap)
		if err != nil {
			return nil, err
		}
		u, err := core.RestoreBChao(st)
		if err != nil {
			return nil, err
		}
		return wrapBChao(u), nil
	case "ares":
		st, err := decodeState[core.AResSnapshot[T]](snap)
		if err != nil {
			return nil, err
		}
		u, err := core.RestoreARes(st)
		if err != nil {
			return nil, err
		}
		return wrapARes(u), nil
	case "window":
		st, err := decodeState[core.SlidingWindowSnapshot[T]](snap)
		if err != nil {
			return nil, err
		}
		u, err := core.RestoreSlidingWindow(st)
		if err != nil {
			return nil, err
		}
		return wrapWindow(u), nil
	case "timewindow":
		st, err := decodeState[core.TimeWindowSnapshot[T]](snap)
		if err != nil {
			return nil, err
		}
		u, err := core.RestoreTimeWindow(st)
		if err != nil {
			return nil, err
		}
		return wrapTimeWindow(u), nil
	case "ptwindow":
		st, err := decodeState[core.PriorityTimeWindowSnapshot[T]](snap)
		if err != nil {
			return nil, err
		}
		u, err := core.RestorePriorityTimeWindow(st)
		if err != nil {
			return nil, err
		}
		return wrapPTWindow(u), nil
	}
	return nil, fmt.Errorf("tbs: scheme %q registered but not restorable", info.Name)
}
