package tbs

import (
	"fmt"
	"hash/fnv"
)

// Config is the declarative counterpart of New's functional options: a
// plain struct naming a scheme and its option values, decodable from JSON
// and fillable from command-line flags. It exists for processes that build
// many samplers from one configuration — a server creating one sampler per
// stream key, a CLI constructing from a config file — where a value that
// can be stored, transported and re-seeded per key is more convenient than
// an option list.
//
// Pointer fields distinguish "not set" from a zero value. Setting an
// option the scheme does not accept is an error, with one deliberate
// exception: a Seed set for a scheme that takes no seed (window,
// timewindow) is ignored, so a keyed registry can derive per-key seeds
// uniformly without consulting the registry metadata first.
type Config struct {
	Scheme    string   `json:"scheme"`
	Lambda    *float64 `json:"lambda,omitempty"`
	MaxSize   *int     `json:"maxsize,omitempty"`
	MeanBatch *float64 `json:"meanbatch,omitempty"`
	Horizon   *float64 `json:"horizon,omitempty"`
	Seed      *uint64  `json:"seed,omitempty"`
}

// WithSeed returns a copy of the config with the seed replaced. Combined
// with DeriveSeed it gives every stream key its own deterministic
// stochastic process from one base config.
func (c Config) WithSeed(seed uint64) Config {
	c.Seed = &seed
	return c
}

// DeriveSeed mixes a base seed with a stream key into a per-key seed, so a
// registry of samplers built from one Config is deterministic as a whole
// yet no two keys share an RNG trajectory.
func DeriveSeed(base uint64, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	// Splitmix-style finalizer over the xor keeps derived seeds
	// well-separated even for near-identical keys.
	z := base ^ h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Options resolves the config into the option list New expects, validating
// the scheme name and dropping an unaccepted Seed (see the type comment).
func (c Config) Options() (scheme string, opts []Option, err error) {
	info, opts, err := c.resolve()
	if err != nil {
		return "", nil, err
	}
	return info.Name, opts, nil
}

// resolve is the shared core of Options and Validate: one registry lookup
// plus the per-field acceptance checks.
func (c Config) resolve() (Scheme, []Option, error) {
	info, err := Lookup(c.Scheme)
	if err != nil {
		return Scheme{}, nil, err
	}
	var opts []Option
	add := func(name string, opt Option) error {
		if !info.Accepts(name) {
			return fmt.Errorf("tbs: scheme %q does not accept option %s", info.Name, name)
		}
		opts = append(opts, opt)
		return nil
	}
	if c.Lambda != nil {
		if err := add(OptLambda, Lambda(*c.Lambda)); err != nil {
			return Scheme{}, nil, err
		}
	}
	if c.MaxSize != nil {
		if err := add(OptMaxSize, MaxSize(*c.MaxSize)); err != nil {
			return Scheme{}, nil, err
		}
	}
	if c.MeanBatch != nil {
		if err := add(OptMeanBatch, MeanBatch(*c.MeanBatch)); err != nil {
			return Scheme{}, nil, err
		}
	}
	if c.Horizon != nil {
		if err := add(OptHorizon, Horizon(*c.Horizon)); err != nil {
			return Scheme{}, nil, err
		}
	}
	if c.Seed != nil && info.Accepts(OptSeed) {
		opts = append(opts, Seed(*c.Seed))
	}
	return info, opts, nil
}

// Validate reports whether the config would construct successfully:
// a known scheme, every required option present, no rejected option set,
// every value in range.
func (c Config) Validate() error {
	info, opts, err := c.resolve()
	if err != nil {
		return err
	}
	var scratch config
	set := make(map[string]bool, len(opts))
	for _, o := range opts {
		if err := o.apply(&scratch); err != nil {
			return fmt.Errorf("tbs: %s: %w", info.Name, err)
		}
		set[o.name] = true
	}
	for _, req := range info.Required {
		if !set[req] {
			return fmt.Errorf("tbs: scheme %q requires option %s", info.Name, req)
		}
	}
	return nil
}

// RestrictedTo returns a copy of the config scoped to the named scheme:
// the canonical name is set and every field the scheme rejects is
// cleared. CLIs that expose one flag set across all schemes build one
// full Config and narrow it here, instead of each maintaining its own
// flag-to-option switch over the registry metadata.
func (c Config) RestrictedTo(scheme string) (Config, error) {
	info, err := Lookup(scheme)
	if err != nil {
		return Config{}, err
	}
	out := Config{Scheme: info.Name, Seed: c.Seed} // Options drops an unaccepted seed
	if info.Accepts(OptLambda) {
		out.Lambda = c.Lambda
	}
	if info.Accepts(OptMaxSize) {
		out.MaxSize = c.MaxSize
	}
	if info.Accepts(OptMeanBatch) {
		out.MeanBatch = c.MeanBatch
	}
	if info.Accepts(OptHorizon) {
		out.Horizon = c.Horizon
	}
	return out, nil
}

// NewFromConfig constructs a sampler from a declarative config, applying
// exactly the same validation as New.
func NewFromConfig[T any](c Config) (Sampler[T], error) {
	scheme, opts, err := c.Options()
	if err != nil {
		return nil, err
	}
	return New[T](scheme, opts...)
}
