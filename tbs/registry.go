package tbs

import (
	"fmt"
	"sort"
	"strings"
)

// Scheme describes one registered sampling scheme: its canonical name (the
// key used by New, Snapshot.Scheme and Restore), accepted aliases, and
// which options it accepts and requires. Options not listed in Options are
// rejected by New; OptSeed, when accepted, defaults to 1.
type Scheme struct {
	Name        string
	Aliases     []string
	Description string
	Options     []string
	Required    []string
}

// Accepts reports whether the scheme accepts the named option.
func (s Scheme) Accepts(option string) bool {
	for _, o := range s.Options {
		if o == option {
			return true
		}
	}
	return false
}

var registry = []Scheme{
	{
		Name:        "rtbs",
		Aliases:     []string{"r-tbs"},
		Description: "reservoir-based time-biased sampling (Algorithm 2): exact exponential decay with a hard sample-size bound",
		Options:     []string{OptLambda, OptMaxSize, OptSeed},
		Required:    []string{OptLambda, OptMaxSize},
	},
	{
		Name:        "ttbs",
		Aliases:     []string{"t-tbs"},
		Description: "targeted-size time-biased sampling (Algorithm 1): embarrassingly parallel, size controlled only probabilistically",
		Options:     []string{OptLambda, OptMaxSize, OptMeanBatch, OptSeed},
		Required:    []string{OptLambda, OptMaxSize, OptMeanBatch},
	},
	{
		Name:        "btbs",
		Aliases:     []string{"b-tbs", "bernoulli"},
		Description: "plain Bernoulli time-biased sampling (Appendix A): exact decay, unbounded sample size",
		Options:     []string{OptLambda, OptSeed},
		Required:    []string{OptLambda},
	},
	{
		Name:        "brs",
		Aliases:     []string{"unif", "reservoir"},
		Description: "batched reservoir sampling (Appendix B): bounded uniform sample, no time biasing (the paper's Unif baseline)",
		Options:     []string{OptMaxSize, OptSeed},
		Required:    []string{OptMaxSize},
	},
	{
		Name:        "bchao",
		Aliases:     []string{"chao"},
		Description: "batched time-decayed Chao sampling (Appendix D): bounded, but violates the relative-inclusion property",
		Options:     []string{OptLambda, OptMaxSize, OptSeed},
		Required:    []string{OptLambda, OptMaxSize},
	},
	{
		Name:        "ares",
		Aliases:     []string{"a-res"},
		Description: "A-Res weighted reservoir with forward decay (Section 7): bounded, biases acceptance rather than appearance",
		Options:     []string{OptLambda, OptMaxSize, OptSeed},
		Required:    []string{OptLambda, OptMaxSize},
	},
	{
		Name:        "window",
		Aliases:     []string{"sw", "sliding-window"},
		Description: "count-based sliding window (the paper's SW baseline): exactly the last n items",
		Options:     []string{OptMaxSize},
		Required:    []string{OptMaxSize},
	},
	{
		Name:        "timewindow",
		Aliases:     []string{"tw", "time-window"},
		Description: "wall-clock time window: every item younger than the horizon; unbounded size",
		Options:     []string{OptHorizon},
		Required:    []string{OptHorizon},
	},
	{
		Name:        "ptwindow",
		Aliases:     []string{"priority-window"},
		Description: "bounded uniform sample over a time window via priority sampling (Gemulla & Lehner)",
		Options:     []string{OptHorizon, OptMaxSize, OptSeed},
		Required:    []string{OptHorizon, OptMaxSize},
	},
}

// Schemes returns a description of every registered scheme, sorted by
// canonical name. The returned slice is a copy.
func Schemes() []Scheme {
	out := append([]Scheme(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup resolves a scheme name or alias (case-insensitive) to its
// descriptor.
func Lookup(name string) (Scheme, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	for _, s := range registry {
		if s.Name == key {
			return s, nil
		}
		for _, a := range s.Aliases {
			if a == key {
				return s, nil
			}
		}
	}
	return Scheme{}, fmt.Errorf("tbs: unknown scheme %q (known: %s)", name, knownNames())
}

func knownNames() string {
	names := make([]string, 0, len(registry))
	for _, s := range Schemes() {
		names = append(names, s.Name)
	}
	return strings.Join(names, ", ")
}
