package tbs

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/xrand"
)

// Sampler is the unified interface over every sampling scheme. A Sampler
// consumes a stream of batches arriving at times t = 1, 2, … and maintains
// a sample of the items seen so far. Implementations returned by New are
// not safe for concurrent use; see NewConcurrent.
type Sampler[T any] interface {
	// Advance feeds the next batch, advancing the clock by one time unit.
	// The batch may be empty and is not retained.
	Advance(batch []T)

	// Sample returns a freshly realized copy of the current sample.
	Sample() []T

	// ExpectedSize returns E[|Sₜ|]: the sample weight for fractional
	// schemes, the exact current size for integral ones.
	ExpectedSize() float64

	// Scheme returns the canonical registry name of the scheme.
	Scheme() string

	// Snapshot captures the sampler's complete state — including its RNG —
	// in the unified checkpoint envelope. Restore continues the identical
	// stochastic process.
	Snapshot() (Snapshot, error)
}

// extended is the internal capability surface behind the Weight, AdvanceAt,
// Now and AppendSample helpers. Both the scheme wrapper and Concurrent
// implement it.
type extended[T any] interface {
	Sampler[T]
	weightCap() (total, lambda float64, ok bool)
	advanceAtCap(t float64, batch []T) bool
	nowCap() (float64, bool)
	inclusionCap(arrival float64) (float64, bool)
	appendSampleCap(dst []T) ([]T, bool)
}

// wrapper adapts one concrete internal sampler to the Sampler interface.
type wrapper[T any] struct {
	inner     core.Sampler[T]
	scheme    string
	snap      func() (Snapshot, error)
	weight    func() (total, lambda float64) // nil when the scheme tracks no weights
	timed     core.TimedSampler[T]           // nil when real-valued times are unsupported
	incl      func(arrival float64) float64  // nil unless the scheme has exact inclusion probabilities
	mutSample bool                           // true when Sample draws from the RNG (R-TBS)
}

func (w *wrapper[T]) Advance(batch []T)           { w.inner.Advance(batch) }
func (w *wrapper[T]) Sample() []T                 { return w.inner.Sample() }
func (w *wrapper[T]) ExpectedSize() float64       { return w.inner.ExpectedSize() }
func (w *wrapper[T]) Scheme() string              { return w.scheme }
func (w *wrapper[T]) Snapshot() (Snapshot, error) { return w.snap() }
func (w *wrapper[T]) sampleMutates() bool         { return w.mutSample }

func (w *wrapper[T]) weightCap() (float64, float64, bool) {
	if w.weight == nil {
		return 0, 0, false
	}
	total, lambda := w.weight()
	return total, lambda, true
}

func (w *wrapper[T]) advanceAtCap(t float64, batch []T) bool {
	if w.timed == nil {
		return false
	}
	w.timed.AdvanceAt(t, batch)
	return true
}

func (w *wrapper[T]) nowCap() (float64, bool) {
	if w.timed == nil {
		return 0, false
	}
	return w.timed.Now(), true
}

func (w *wrapper[T]) inclusionCap(arrival float64) (float64, bool) {
	if w.incl == nil {
		return 0, false
	}
	return w.incl(arrival), true
}

func (w *wrapper[T]) appendSampleCap(dst []T) ([]T, bool) {
	if a, ok := w.inner.(core.AppendSampler[T]); ok {
		return a.AppendSample(dst), true
	}
	return dst, false
}

// Weight returns the scheme's weight bookkeeping — the total decayed weight
// Wₜ of every item seen and the decay rate λ — when the scheme tracks it
// (R-TBS, T-TBS, B-TBS, B-Chao); ok is false otherwise.
func Weight[T any](s Sampler[T]) (total, lambda float64, ok bool) {
	if e, isExt := s.(extended[T]); isExt {
		return e.weightCap()
	}
	return 0, 0, false
}

// AdvanceAt feeds a batch arriving at real-valued time t, which must be
// strictly greater than the previous arrival time. It returns an error for
// schemes that only support unit time steps (brs, window). Like
// Sampler.Advance, it panics if t is not after the current time.
func AdvanceAt[T any](s Sampler[T], t float64, batch []T) error {
	if e, isExt := s.(extended[T]); isExt && e.advanceAtCap(t, batch) {
		return nil
	}
	return fmt.Errorf("tbs: scheme %q does not support real-valued batch times", s.Scheme())
}

// Now returns the time of the most recent batch for schemes that track
// real-valued time; ok is false otherwise.
func Now[T any](s Sampler[T]) (t float64, ok bool) {
	if e, isExt := s.(extended[T]); isExt {
		return e.nowCap()
	}
	return 0, false
}

// InclusionProbability returns the theoretical Pr[i ∈ Sₜ] for an item that
// arrived at time arrival ≤ Now() — equation (4) of the paper,
// (Cₜ/Wₜ)·exp(−λ·age) — for schemes with exact inclusion probabilities
// (currently R-TBS); ok is false otherwise.
func InclusionProbability[T any](s Sampler[T], arrival float64) (p float64, ok bool) {
	if e, isExt := s.(extended[T]); isExt {
		return e.inclusionCap(arrival)
	}
	return 0, false
}

// AppendSample realizes the current sample into a caller-owned buffer: the
// realization is appended to dst and the extended slice returned, reusing
// dst's backing array when it has capacity. A caller that feeds the result
// back in (buf = tbs.AppendSample(s, buf[:0])) samples without allocating
// in steady state — the read side of the zero-allocation ingest path. It
// consumes exactly the RNG draws Sample would, so the two are
// interchangeable in deterministic replay. Samplers from New always
// support the append path; for foreign Sampler implementations that do
// not, it falls back to appending a Sample() copy.
func AppendSample[T any](s Sampler[T], dst []T) []T {
	if e, isExt := s.(extended[T]); isExt {
		if out, ok := e.appendSampleCap(dst); ok {
			return out
		}
	}
	return append(dst, s.Sample()...)
}

// New constructs a sampler by scheme name (see Schemes for discovery):
//
//	s, err := tbs.New[string]("rtbs", tbs.Lambda(0.07), tbs.MaxSize(1000), tbs.Seed(1))
//
// Every option the scheme lists as required must be supplied; passing an
// option the scheme does not accept is an error. The RNG seed defaults
// to 1.
func New[T any](scheme string, opts ...Option) (Sampler[T], error) {
	info, err := Lookup(scheme)
	if err != nil {
		return nil, err
	}
	cfg := config{seed: 1}
	set := make(map[string]bool, len(opts))
	for _, o := range opts {
		if o.apply == nil {
			return nil, fmt.Errorf("tbs: zero-value Option")
		}
		if !info.Accepts(o.name) {
			return nil, fmt.Errorf("tbs: scheme %q does not accept option %s", info.Name, o.name)
		}
		if err := o.apply(&cfg); err != nil {
			return nil, fmt.Errorf("tbs: %s: %w", info.Name, err)
		}
		set[o.name] = true
	}
	for _, req := range info.Required {
		if !set[req] {
			return nil, fmt.Errorf("tbs: scheme %q requires option %s", info.Name, req)
		}
	}
	return build[T](info.Name, cfg)
}

// build instantiates the named scheme. Restore goes through the matching
// wrap* helpers so constructed and restored samplers are indistinguishable.
func build[T any](name string, cfg config) (Sampler[T], error) {
	rng := xrand.New(cfg.seed)
	switch name {
	case "rtbs":
		u, err := core.NewRTBS[T](cfg.lambda, cfg.maxSize, rng)
		if err != nil {
			return nil, err
		}
		return wrapRTBS(u), nil
	case "ttbs":
		u, err := core.NewTTBS[T](cfg.lambda, cfg.maxSize, cfg.meanBatch, rng)
		if err != nil {
			return nil, err
		}
		return wrapTTBS(u), nil
	case "btbs":
		u, err := core.NewBTBS[T](cfg.lambda, rng)
		if err != nil {
			return nil, err
		}
		return wrapBTBS(u), nil
	case "brs":
		u, err := core.NewBRS[T](cfg.maxSize, rng)
		if err != nil {
			return nil, err
		}
		return wrapBRS(u), nil
	case "bchao":
		u, err := core.NewBChao[T](cfg.lambda, cfg.maxSize, rng)
		if err != nil {
			return nil, err
		}
		return wrapBChao(u), nil
	case "ares":
		u, err := core.NewARes[T](cfg.lambda, cfg.maxSize, rng)
		if err != nil {
			return nil, err
		}
		return wrapARes(u), nil
	case "window":
		u, err := core.NewSlidingWindow[T](cfg.maxSize)
		if err != nil {
			return nil, err
		}
		return wrapWindow(u), nil
	case "timewindow":
		u, err := core.NewTimeWindow[T](cfg.horizon)
		if err != nil {
			return nil, err
		}
		return wrapTimeWindow(u), nil
	case "ptwindow":
		u, err := core.NewPriorityTimeWindow[T](cfg.horizon, cfg.maxSize, rng)
		if err != nil {
			return nil, err
		}
		return wrapPTWindow(u), nil
	}
	return nil, fmt.Errorf("tbs: scheme %q registered but not buildable", name)
}

func wrapRTBS[T any](u *core.RTBS[T]) Sampler[T] {
	return &wrapper[T]{
		inner:     u,
		scheme:    "rtbs",
		snap:      func() (Snapshot, error) { return encodeState("rtbs", u.Snapshot()) },
		weight:    func() (float64, float64) { return u.TotalWeight(), u.DecayRate() },
		timed:     u,
		incl:      u.InclusionProbability,
		mutSample: true,
	}
}

func wrapTTBS[T any](u *core.TTBS[T]) Sampler[T] {
	return &wrapper[T]{
		inner:  u,
		scheme: "ttbs",
		snap:   func() (Snapshot, error) { return encodeState("ttbs", u.Snapshot()) },
		weight: func() (float64, float64) { return u.TotalWeight(), u.DecayRate() },
		timed:  u,
	}
}

func wrapBTBS[T any](u *core.BTBS[T]) Sampler[T] {
	return &wrapper[T]{
		inner:  u,
		scheme: "btbs",
		snap:   func() (Snapshot, error) { return encodeState("btbs", u.Snapshot()) },
		weight: func() (float64, float64) { return u.TotalWeight(), u.DecayRate() },
		timed:  u,
	}
}

func wrapBRS[T any](u *core.BRS[T]) Sampler[T] {
	return &wrapper[T]{
		inner:  u,
		scheme: "brs",
		snap:   func() (Snapshot, error) { return encodeState("brs", u.Snapshot()) },
	}
}

func wrapBChao[T any](u *core.BChao[T]) Sampler[T] {
	return &wrapper[T]{
		inner:  u,
		scheme: "bchao",
		snap:   func() (Snapshot, error) { return encodeState("bchao", u.Snapshot()) },
		weight: func() (float64, float64) { return u.TotalWeight(), u.DecayRate() },
		timed:  u,
	}
}

func wrapARes[T any](u *core.ARes[T]) Sampler[T] {
	return &wrapper[T]{
		inner:  u,
		scheme: "ares",
		snap:   func() (Snapshot, error) { return encodeState("ares", u.Snapshot()) },
		timed:  u,
	}
}

func wrapWindow[T any](u *core.SlidingWindow[T]) Sampler[T] {
	return &wrapper[T]{
		inner:  u,
		scheme: "window",
		snap:   func() (Snapshot, error) { return encodeState("window", u.Snapshot()) },
	}
}

func wrapTimeWindow[T any](u *core.TimeWindow[T]) Sampler[T] {
	return &wrapper[T]{
		inner:  u,
		scheme: "timewindow",
		snap:   func() (Snapshot, error) { return encodeState("timewindow", u.Snapshot()) },
		timed:  u,
	}
}

func wrapPTWindow[T any](u *core.PriorityTimeWindow[T]) Sampler[T] {
	return &wrapper[T]{
		inner:  u,
		scheme: "ptwindow",
		snap:   func() (Snapshot, error) { return encodeState("ptwindow", u.Snapshot()) },
		timed:  u,
	}
}
