package tbs_test

import (
	"reflect"
	"sync"
	"testing"

	"repro/tbs"
)

// TestAppendSampleMatchesSample: for every scheme, AppendSample on one
// sampler realizes exactly what Sample realizes on a twin driven
// identically — the append path consumes the same RNG draws.
func TestAppendSampleMatchesSample(t *testing.T) {
	for _, info := range tbs.Schemes() {
		t.Run(info.Name, func(t *testing.T) {
			a, err := tbs.New[int](info.Name, fullOptions(info)...)
			if err != nil {
				t.Fatal(err)
			}
			b, err := tbs.New[int](info.Name, fullOptions(info)...)
			if err != nil {
				t.Fatal(err)
			}
			var buf []int
			for i := 1; i <= 12; i++ {
				ba := batch(i, 17)
				a.Advance(ba)
				b.Advance(ba)
				buf = tbs.AppendSample(a, buf[:0])
				want := b.Sample()
				if !reflect.DeepEqual(append([]int{}, buf...), want) {
					t.Fatalf("batch %d: AppendSample = %v, Sample = %v", i, buf, want)
				}
			}
		})
	}
}

// TestAppendSampleReusesBuffer: once the buffer has grown to the sample
// size, feeding it back yields the same backing array (no reallocation).
func TestAppendSampleReusesBuffer(t *testing.T) {
	s, err := tbs.New[int]("rtbs", tbs.Lambda(0.1), tbs.MaxSize(50), tbs.Seed(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		s.Advance(batch(i, 20))
	}
	buf := make([]int, 0, 64)
	out := tbs.AppendSample(s, buf)
	if len(out) == 0 || len(out) > 64 {
		t.Fatalf("sample size %d, want within buffer capacity", len(out))
	}
	again := tbs.AppendSample(s, out[:0])
	if &again[0] != &out[0] {
		t.Fatal("AppendSample reallocated despite sufficient capacity")
	}
}

// foreignSampler implements Sampler without the append capability, to pin
// the copying fallback.
type foreignSampler struct{}

func (foreignSampler) Advance([]int)         {}
func (foreignSampler) Sample() []int         { return []int{42, 43} }
func (foreignSampler) ExpectedSize() float64 { return 2 }
func (foreignSampler) Scheme() string        { return "foreign" }
func (foreignSampler) Snapshot() (tbs.Snapshot, error) {
	return tbs.Snapshot{}, nil
}

func TestAppendSampleForeignFallback(t *testing.T) {
	got := tbs.AppendSample[int](foreignSampler{}, []int{1})
	if !reflect.DeepEqual(got, []int{1, 42, 43}) {
		t.Fatalf("fallback AppendSample = %v", got)
	}
}

// TestConcurrentAppendSample: the shared-read append path under Concurrent
// returns correct realizations from many goroutines with caller-owned
// buffers, for both a pure-read scheme (brs) and the mutating one (rtbs).
func TestConcurrentAppendSample(t *testing.T) {
	for _, scheme := range []string{"brs", "rtbs"} {
		t.Run(scheme, func(t *testing.T) {
			opts := []tbs.Option{tbs.MaxSize(30), tbs.Seed(11)}
			if scheme == "rtbs" {
				opts = append(opts, tbs.Lambda(0.1))
			}
			s, err := tbs.New[int](scheme, opts...)
			if err != nil {
				t.Fatal(err)
			}
			c := tbs.NewConcurrent(s)
			for i := 1; i <= 10; i++ {
				c.Advance(batch(i, 20))
			}
			want := c.ExpectedSize()
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					var buf []int
					for i := 0; i < 50; i++ {
						buf = c.AppendSample(buf[:0])
						if float64(len(buf)) < want-1 || float64(len(buf)) > want+1 {
							t.Errorf("AppendSample size %d, expected about %v", len(buf), want)
							return
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}
