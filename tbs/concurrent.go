package tbs

import "sync"

// Concurrent makes a Sampler safe for concurrent use by serializing every
// method behind one mutex, so a sampler can sit behind request handlers:
// writers call Advance as batches arrive while readers call Sample and
// ExpectedSize, and a checkpointing goroutine calls Snapshot — all without
// external locking. The capability helpers (Weight, AdvanceAt, Now) remain
// available and are serialized too.
type Concurrent[T any] struct {
	mu sync.Mutex
	s  Sampler[T]
}

// NewConcurrent wraps s in a Concurrent. Wrapping an existing Concurrent
// returns it unchanged.
func NewConcurrent[T any](s Sampler[T]) *Concurrent[T] {
	if c, ok := s.(*Concurrent[T]); ok {
		return c
	}
	return &Concurrent[T]{s: s}
}

// Advance implements Sampler.
func (c *Concurrent[T]) Advance(batch []T) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.Advance(batch)
}

// Sample implements Sampler.
func (c *Concurrent[T]) Sample() []T {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Sample()
}

// ExpectedSize implements Sampler.
func (c *Concurrent[T]) ExpectedSize() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.ExpectedSize()
}

// Scheme implements Sampler.
func (c *Concurrent[T]) Scheme() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Scheme()
}

// Snapshot implements Sampler. The snapshot is atomic with respect to
// concurrent Advance and Sample calls.
func (c *Concurrent[T]) Snapshot() (Snapshot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Snapshot()
}

func (c *Concurrent[T]) weightCap() (float64, float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.s.(extended[T]); ok {
		return e.weightCap()
	}
	return 0, 0, false
}

func (c *Concurrent[T]) advanceAtCap(t float64, batch []T) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.s.(extended[T]); ok {
		return e.advanceAtCap(t, batch)
	}
	return false
}

func (c *Concurrent[T]) nowCap() (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.s.(extended[T]); ok {
		return e.nowCap()
	}
	return 0, false
}

func (c *Concurrent[T]) inclusionCap(arrival float64) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.s.(extended[T]); ok {
		return e.inclusionCap(arrival)
	}
	return 0, false
}
