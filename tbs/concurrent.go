package tbs

import "sync"

// samplingMutator is implemented by samplers whose Sample method mutates
// internal state (R-TBS draws from its RNG to realize the partial item).
// Concurrent consults it to decide whether Sample may share the read lock.
type samplingMutator interface {
	sampleMutates() bool
}

// Concurrent makes a Sampler safe for concurrent use behind one RWMutex,
// so a sampler can sit behind request handlers: writers call Advance as
// batches arrive while readers call Sample and ExpectedSize, and a
// checkpointing goroutine calls Snapshot — all without external locking.
// Read-only paths (Sample, ExpectedSize, Scheme, and the Weight, Now and
// InclusionProbability helpers) take the read lock and run concurrently
// with each other; Advance, AdvanceAt and Snapshot are exclusive. The one
// exception is R-TBS's Sample, which draws from the sampler's RNG to
// realize the partial item and therefore takes the write lock.
type Concurrent[T any] struct {
	mu sync.RWMutex
	s  Sampler[T]
	// mutSample records whether s.Sample mutates state. Unknown
	// implementations are assumed to mutate — correctness over speed.
	mutSample bool
}

// SampleMutates reports whether s's Sample method mutates sampler state
// (true for R-TBS, whose realization draws from the RNG; conservatively
// true for unknown implementations). Checkpointing callers use it to know
// whether a read requires re-persisting the sampler.
func SampleMutates[T any](s Sampler[T]) bool {
	if m, ok := s.(samplingMutator); ok {
		return m.sampleMutates()
	}
	return true
}

// NewConcurrent wraps s in a Concurrent. Wrapping an existing Concurrent
// returns it unchanged.
func NewConcurrent[T any](s Sampler[T]) *Concurrent[T] {
	if c, ok := s.(*Concurrent[T]); ok {
		return c
	}
	mutSample := true
	if m, ok := s.(samplingMutator); ok {
		mutSample = m.sampleMutates()
	}
	return &Concurrent[T]{s: s, mutSample: mutSample}
}

// Advance implements Sampler.
func (c *Concurrent[T]) Advance(batch []T) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.Advance(batch)
}

// Sample implements Sampler. For schemes whose realization is a pure read
// it holds only the read lock, so concurrent readers do not serialize.
func (c *Concurrent[T]) Sample() []T {
	if c.mutSample {
		c.mu.Lock()
		defer c.mu.Unlock()
	} else {
		c.mu.RLock()
		defer c.mu.RUnlock()
	}
	return c.s.Sample()
}

// AppendSample realizes the current sample into a caller-owned buffer (see
// tbs.AppendSample) under the appropriate lock: schemes whose realization
// is a pure read hold only the read lock, so concurrent readers each fill
// their own buffer without serializing — and, unlike Sample, without a
// fresh allocation per call once the buffer has grown to the sample size.
func (c *Concurrent[T]) AppendSample(dst []T) []T {
	if c.mutSample {
		c.mu.Lock()
		defer c.mu.Unlock()
	} else {
		c.mu.RLock()
		defer c.mu.RUnlock()
	}
	if e, ok := c.s.(extended[T]); ok {
		if out, ok2 := e.appendSampleCap(dst); ok2 {
			return out
		}
	}
	return append(dst, c.s.Sample()...)
}

func (c *Concurrent[T]) appendSampleCap(dst []T) ([]T, bool) {
	return c.AppendSample(dst), true
}

// ExpectedSize implements Sampler.
func (c *Concurrent[T]) ExpectedSize() float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.ExpectedSize()
}

// Scheme implements Sampler.
func (c *Concurrent[T]) Scheme() string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.Scheme()
}

func (c *Concurrent[T]) sampleMutates() bool { return c.mutSample }

// Snapshot implements Sampler. The snapshot is atomic with respect to
// concurrent Advance and Sample calls.
func (c *Concurrent[T]) Snapshot() (Snapshot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Snapshot()
}

func (c *Concurrent[T]) weightCap() (float64, float64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if e, ok := c.s.(extended[T]); ok {
		return e.weightCap()
	}
	return 0, 0, false
}

func (c *Concurrent[T]) advanceAtCap(t float64, batch []T) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.s.(extended[T]); ok {
		return e.advanceAtCap(t, batch)
	}
	return false
}

func (c *Concurrent[T]) nowCap() (float64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if e, ok := c.s.(extended[T]); ok {
		return e.nowCap()
	}
	return 0, false
}

func (c *Concurrent[T]) inclusionCap(arrival float64) (float64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if e, ok := c.s.(extended[T]); ok {
		return e.inclusionCap(arrival)
	}
	return 0, false
}
