package tbs

import (
	"fmt"

	"repro/internal/core"
)

// Option names, used in Scheme.Options/Scheme.Required and in error
// messages.
const (
	OptLambda    = "lambda"
	OptMaxSize   = "maxsize"
	OptSeed      = "seed"
	OptMeanBatch = "meanbatch"
	OptHorizon   = "horizon"
)

// config collects option values before a scheme is built.
type config struct {
	lambda    float64
	maxSize   int
	seed      uint64
	meanBatch float64
	horizon   float64
}

// Option configures a sampler under construction. Options are created by
// Lambda, MaxSize, Seed, MeanBatch and Horizon; passing an option a scheme
// does not accept is an error.
type Option struct {
	name  string
	apply func(*config) error
}

// Lambda sets the decay rate λ per batch (≥ 0). The helpers
// LambdaForRetention and LambdaForEntitySurvival derive λ from retention
// goals.
func Lambda(v float64) Option {
	return Option{name: OptLambda, apply: func(c *config) error {
		if !core.ValidateLambda(v) {
			return fmt.Errorf("invalid decay rate λ = %v", v)
		}
		c.lambda = v
		return nil
	}}
}

// MaxSize sets the sample-size bound n (> 0): a hard cap for the bounded
// schemes, the equilibrium target for T-TBS.
func MaxSize(n int) Option {
	return Option{name: OptMaxSize, apply: func(c *config) error {
		if n <= 0 {
			return fmt.Errorf("sample size bound must be positive, got %d", n)
		}
		c.maxSize = n
		return nil
	}}
}

// Seed sets the RNG seed. Samplers are deterministic given a seed; the
// default is 1.
func Seed(seed uint64) Option {
	return Option{name: OptSeed, apply: func(c *config) error {
		c.seed = seed
		return nil
	}}
}

// MeanBatch sets the assumed mean batch size b (> 0) required by T-TBS,
// which must satisfy b ≥ n(1−e^−λ).
func MeanBatch(b float64) Option {
	return Option{name: OptMeanBatch, apply: func(c *config) error {
		if b <= 0 {
			return fmt.Errorf("mean batch size must be positive, got %v", b)
		}
		c.meanBatch = b
		return nil
	}}
}

// Horizon sets the age cutoff (> 0, in batch time units) for the time-window
// schemes.
func Horizon(h float64) Option {
	return Option{name: OptHorizon, apply: func(c *config) error {
		if h <= 0 {
			return fmt.Errorf("window horizon must be positive, got %v", h)
		}
		c.horizon = h
		return nil
	}}
}

// LambdaForRetention returns the decay rate λ such that an item's appearance
// probability after k batches is p times its initial appearance probability
// (Section 1 of the paper). It panics unless k > 0 and 0 < p < 1.
func LambdaForRetention(k int, p float64) float64 { return core.LambdaForRetention(k, p) }

// LambdaForEntitySurvival returns λ such that if an entity was represented
// by n items k batches ago, at least one remains in the sample with
// probability q (Section 1). It panics unless k, n > 0 and 0 < q < 1.
func LambdaForEntitySurvival(k, n int, q float64) float64 {
	return core.LambdaForEntitySurvival(k, n, q)
}
