package tbs_test

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/tbs"
)

// fullOptions returns a valid option set covering everything the scheme
// accepts.
func fullOptions(s tbs.Scheme) []tbs.Option {
	var opts []tbs.Option
	for _, name := range s.Options {
		switch name {
		case tbs.OptLambda:
			opts = append(opts, tbs.Lambda(0.2))
		case tbs.OptMaxSize:
			opts = append(opts, tbs.MaxSize(30))
		case tbs.OptSeed:
			opts = append(opts, tbs.Seed(7))
		case tbs.OptMeanBatch:
			opts = append(opts, tbs.MeanBatch(10))
		case tbs.OptHorizon:
			opts = append(opts, tbs.Horizon(5))
		}
	}
	return opts
}

func batch(t, size int) []int {
	b := make([]int, size)
	for i := range b {
		b[i] = t*1000 + i
	}
	return b
}

// TestNewEveryScheme constructs every registered scheme by canonical name
// and by each alias, and checks basic stream behavior.
func TestNewEveryScheme(t *testing.T) {
	for _, info := range tbs.Schemes() {
		t.Run(info.Name, func(t *testing.T) {
			names := append([]string{info.Name, strings.ToUpper(info.Name)}, info.Aliases...)
			for _, name := range names {
				s, err := tbs.New[int](name, fullOptions(info)...)
				if err != nil {
					t.Fatalf("New(%q): %v", name, err)
				}
				if s.Scheme() != info.Name {
					t.Fatalf("New(%q).Scheme() = %q, want %q", name, s.Scheme(), info.Name)
				}
			}
			s, err := tbs.New[int](info.Name, fullOptions(info)...)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= 10; i++ {
				s.Advance(batch(i, 10))
			}
			if got := s.ExpectedSize(); got <= 0 {
				t.Fatalf("ExpectedSize after 10 batches = %v, want > 0", got)
			}
			if len(s.Sample()) == 0 {
				t.Fatal("empty sample after 10 batches")
			}
		})
	}
}

// TestSnapshotRoundTrip checks, for every scheme, that a snapshot
// round-tripped through JSON and through gob restores a sampler that
// continues the identical stochastic process.
func TestSnapshotRoundTrip(t *testing.T) {
	codecs := []struct {
		name string
		trip func(tbs.Snapshot) (tbs.Snapshot, error)
	}{
		{"json", func(in tbs.Snapshot) (tbs.Snapshot, error) {
			b, err := json.Marshal(in)
			if err != nil {
				return tbs.Snapshot{}, err
			}
			var out tbs.Snapshot
			return out, json.Unmarshal(b, &out)
		}},
		{"gob", func(in tbs.Snapshot) (tbs.Snapshot, error) {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(in); err != nil {
				return tbs.Snapshot{}, err
			}
			var out tbs.Snapshot
			return out, gob.NewDecoder(&buf).Decode(&out)
		}},
	}
	for _, info := range tbs.Schemes() {
		for _, codec := range codecs {
			t.Run(info.Name+"/"+codec.name, func(t *testing.T) {
				orig, err := tbs.New[int](info.Name, fullOptions(info)...)
				if err != nil {
					t.Fatal(err)
				}
				for i := 1; i <= 8; i++ {
					orig.Advance(batch(i, 13))
				}
				snap, err := orig.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				if snap.Scheme != info.Name || snap.Version != tbs.SnapshotVersion {
					t.Fatalf("envelope = {%q, %d}, want {%q, %d}",
						snap.Scheme, snap.Version, info.Name, tbs.SnapshotVersion)
				}
				tripped, err := codec.trip(snap)
				if err != nil {
					t.Fatalf("%s round-trip: %v", codec.name, err)
				}
				restored, err := tbs.Restore[int](tripped)
				if err != nil {
					t.Fatalf("Restore: %v", err)
				}
				if restored.Scheme() != info.Name {
					t.Fatalf("restored scheme = %q, want %q", restored.Scheme(), info.Name)
				}
				// The restored sampler must continue the *identical*
				// stochastic process: same future batches, same samples,
				// call for call.
				for i := 9; i <= 14; i++ {
					b := batch(i, 13)
					orig.Advance(b)
					restored.Advance(b)
					got, want := restored.Sample(), orig.Sample()
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("t=%d: restored sample diverged:\n got %v\nwant %v", i, got, want)
					}
					if restored.ExpectedSize() != orig.ExpectedSize() {
						t.Fatalf("t=%d: ExpectedSize %v != %v", i, restored.ExpectedSize(), orig.ExpectedSize())
					}
				}
			})
		}
	}
}

func TestOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		call func() (any, error)
		want string // substring of the error
	}{
		{"unknown scheme", func() (any, error) { return tbs.New[int]("nope") }, "unknown scheme"},
		{"missing required lambda", func() (any, error) { return tbs.New[int]("rtbs", tbs.MaxSize(10)) }, "requires option lambda"},
		{"missing required maxsize", func() (any, error) { return tbs.New[int]("rtbs", tbs.Lambda(0.1)) }, "requires option maxsize"},
		{"unaccepted option", func() (any, error) {
			return tbs.New[int]("rtbs", tbs.Lambda(0.1), tbs.MaxSize(10), tbs.Horizon(4))
		}, "does not accept option horizon"},
		{"negative lambda", func() (any, error) { return tbs.New[int]("rtbs", tbs.Lambda(-1), tbs.MaxSize(10)) }, "decay rate"},
		{"nonpositive maxsize", func() (any, error) { return tbs.New[int]("rtbs", tbs.Lambda(0.1), tbs.MaxSize(0)) }, "positive"},
		{"nonpositive horizon", func() (any, error) { return tbs.New[int]("timewindow", tbs.Horizon(0)) }, "horizon"},
		{"nonpositive meanbatch", func() (any, error) {
			return tbs.New[int]("ttbs", tbs.Lambda(0.1), tbs.MaxSize(10), tbs.MeanBatch(0))
		}, "mean batch"},
		{"ttbs acceptance rate over 1", func() (any, error) {
			return tbs.New[int]("ttbs", tbs.Lambda(5), tbs.MaxSize(1000), tbs.MeanBatch(1))
		}, "b ≥ n"},
		{"zero option value", func() (any, error) { return tbs.New[int]("rtbs", tbs.Option{}) }, "zero-value"},
		{"seed on seedless scheme", func() (any, error) { return tbs.New[int]("window", tbs.MaxSize(5), tbs.Seed(3)) }, "does not accept option seed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.call()
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestRestoreValidation(t *testing.T) {
	s, err := tbs.New[int]("rtbs", tbs.Lambda(0.1), tbs.MaxSize(10))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	bad := snap
	bad.Version = 99
	if _, err := tbs.Restore[int](bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version: err = %v", err)
	}

	bad = snap
	bad.Scheme = "nope"
	if _, err := tbs.Restore[int](bad); err == nil || !strings.Contains(err.Error(), "unknown scheme") {
		t.Fatalf("bad scheme: err = %v", err)
	}

	bad = snap
	bad.State = []byte("{not json")
	if _, err := tbs.Restore[int](bad); err == nil {
		t.Fatal("corrupt state: want error, got nil")
	}
}

func TestCapabilities(t *testing.T) {
	rtbs, err := tbs.New[int]("rtbs", tbs.Lambda(0.5), tbs.MaxSize(10))
	if err != nil {
		t.Fatal(err)
	}
	rtbs.Advance(batch(1, 20))
	total, lambda, ok := tbs.Weight(rtbs)
	if !ok || lambda != 0.5 || total != 20 {
		t.Fatalf("Weight(rtbs) = (%v, %v, %v), want (20, 0.5, true)", total, lambda, ok)
	}
	if err := tbs.AdvanceAt(rtbs, 2.5, batch(2, 5)); err != nil {
		t.Fatalf("AdvanceAt(rtbs): %v", err)
	}
	if now, ok := tbs.Now(rtbs); !ok || now != 2.5 {
		t.Fatalf("Now(rtbs) = (%v, %v), want (2.5, true)", now, ok)
	}
	// Equation (4): an item arriving at the current time has inclusion
	// probability C/W exactly.
	w, _, _ := tbs.Weight(rtbs)
	if p, ok := tbs.InclusionProbability(rtbs, 2.5); !ok || p != rtbs.ExpectedSize()/w {
		t.Fatalf("InclusionProbability(rtbs, now) = (%v, %v), want (%v, true)",
			p, ok, rtbs.ExpectedSize()/w)
	}

	window, err := tbs.New[int]("window", tbs.MaxSize(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := tbs.Weight(window); ok {
		t.Fatal("Weight(window) reported ok for a weightless scheme")
	}
	if err := tbs.AdvanceAt(window, 2, nil); err == nil {
		t.Fatal("AdvanceAt(window) should be unsupported")
	}
	if _, ok := tbs.Now(window); ok {
		t.Fatal("Now(window) reported ok for an untimed scheme")
	}
	if _, ok := tbs.InclusionProbability(window, 1); ok {
		t.Fatal("InclusionProbability(window) reported ok")
	}
}

// TestConcurrent hammers a Concurrent wrapper from parallel writers,
// readers, and checkpointers; run under -race this verifies the locking.
func TestConcurrent(t *testing.T) {
	inner, err := tbs.New[int]("rtbs", tbs.Lambda(0.1), tbs.MaxSize(100), tbs.Seed(3))
	if err != nil {
		t.Fatal(err)
	}
	s := tbs.NewConcurrent(inner)
	if again := tbs.NewConcurrent[int](s); again != s {
		t.Fatal("NewConcurrent(Concurrent) should be idempotent")
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.Advance(batch(w*100+i, 20))
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if got := len(s.Sample()); got > 100 {
					t.Errorf("sample size %d exceeds bound 100", got)
					return
				}
				_ = s.ExpectedSize()
				_, _, _ = tbs.Weight[int](s)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			if _, err := s.Snapshot(); err != nil {
				t.Errorf("Snapshot: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	// The wrapper must still checkpoint-restore like any Sampler.
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbs.Restore[int](snap); err != nil {
		t.Fatal(err)
	}
}

func TestSchemesMetadata(t *testing.T) {
	schemes := tbs.Schemes()
	if len(schemes) < 7 {
		t.Fatalf("only %d schemes registered", len(schemes))
	}
	seen := map[string]bool{}
	for i, s := range schemes {
		if i > 0 && schemes[i-1].Name >= s.Name {
			t.Fatalf("Schemes() not sorted: %q before %q", schemes[i-1].Name, s.Name)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate scheme %q", s.Name)
		}
		seen[s.Name] = true
		if s.Description == "" {
			t.Fatalf("scheme %q has no description", s.Name)
		}
		for _, req := range s.Required {
			if !s.Accepts(req) {
				t.Fatalf("scheme %q requires %q but does not accept it", s.Name, req)
			}
		}
		if _, err := tbs.Lookup(s.Name); err != nil {
			t.Fatalf("Lookup(%q): %v", s.Name, err)
		}
	}
	for _, name := range []string{"rtbs", "ttbs", "btbs", "brs", "bchao", "window", "timewindow"} {
		if !seen[name] {
			t.Fatalf("scheme %q missing from registry", name)
		}
	}
}

func ExampleNew() {
	s, err := tbs.New[string]("rtbs", tbs.Lambda(0.07), tbs.MaxSize(3), tbs.Seed(1))
	if err != nil {
		panic(err)
	}
	for t := 1; t <= 5; t++ {
		s.Advance([]string{fmt.Sprintf("a%d", t), fmt.Sprintf("b%d", t)})
	}
	fmt.Println(s.Scheme(), len(s.Sample()))
	// Output: rtbs 3
}
