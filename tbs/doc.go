// Package tbs is the public API of the repro library: temporally-biased
// sampling for online model management, after Hentschel, Haas and Tian
// (EDBT 2018). It is the one supported way to consume the samplers from
// outside this module; the implementations live under internal/ and may
// change freely.
//
// Construct a sampler by scheme name with functional options:
//
//	s, err := tbs.New[string]("rtbs", tbs.Lambda(0.07), tbs.MaxSize(1000), tbs.Seed(1))
//	s.Advance(batch)            // fold in the next batch of the stream
//	items := s.Sample()         // realize the current sample
//
// tbs.Schemes describes every registered scheme — which options it accepts
// and requires — so callers can build configuration UIs or CLI flags
// generically; see cmd/tbstream for an example.
//
// Every sampler checkpoints into a single tagged envelope that round-trips
// through encoding/json and encoding/gob:
//
//	snap, err := s.Snapshot()
//	...
//	s2, err := tbs.Restore[string](snap)
//
// A restored sampler continues the exact stochastic process of the
// original: feeding both the same future batches yields identical samples.
// The item type T must be JSON-serializable.
//
// Samplers are single-goroutine objects; wrap one in tbs.NewConcurrent to
// share it between request handlers (read-only calls share an RWMutex
// read lock, so readers never serialize against each other — except
// R-TBS's Sample, which draws from the RNG to realize the partial item
// and therefore takes the write lock). Scheme-specific
// capabilities beyond the core interface are reached through the capability
// helpers tbs.Weight, tbs.AdvanceAt and tbs.Now, which report whether the
// scheme supports them.
//
// tbs.Config is the declarative counterpart of the functional options — a
// JSON-decodable struct consumed by NewFromConfig — for processes that
// build many samplers from one stored configuration; tbs.DeriveSeed turns
// a base seed plus a stream key into well-separated per-key seeds (see
// internal/server for the keyed registry built on both).
//
// The paper's end goal — online model management — is built on exactly
// this surface: score a deployed model on each incoming batch, Advance
// the sampler, and when a retraining policy fires, realize the current
// sample with AppendSample (a caller-owned buffer, so the read side stays
// allocation-free) and retrain from it. internal/manage packages the loop
// for embedding; the tbsd daemon (internal/server) serves it over HTTP
// with per-stream models, asynchronous retraining and checkpointed model
// state. Note that for R-TBS, realizing a sample consumes RNG draws, so a
// deterministic replay must realize at the same points — Snapshot/Restore
// preserve this automatically by checkpointing the RNG.
package tbs
