package tbs_test

import (
	"encoding/json"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/tbs"
)

func ptr[T any](v T) *T { return &v }

// fullConfig returns a valid config covering everything the scheme accepts.
func fullConfig(s tbs.Scheme) tbs.Config {
	c := tbs.Config{Scheme: s.Name}
	for _, name := range s.Options {
		switch name {
		case tbs.OptLambda:
			c.Lambda = ptr(0.2)
		case tbs.OptMaxSize:
			c.MaxSize = ptr(30)
		case tbs.OptSeed:
			c.Seed = ptr(uint64(7))
		case tbs.OptMeanBatch:
			c.MeanBatch = ptr(10.0)
		case tbs.OptHorizon:
			c.Horizon = ptr(5.0)
		}
	}
	return c
}

// TestConfigMatchesOptions checks, for every scheme, that NewFromConfig and
// New with the equivalent option list produce identical stochastic
// processes.
func TestConfigMatchesOptions(t *testing.T) {
	for _, info := range tbs.Schemes() {
		t.Run(info.Name, func(t *testing.T) {
			cfg := fullConfig(info)
			if err := cfg.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			fromCfg, err := tbs.NewFromConfig[int](cfg)
			if err != nil {
				t.Fatalf("NewFromConfig: %v", err)
			}
			fromOpts, err := tbs.New[int](info.Name, fullOptions(info)...)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= 20; i++ {
				b := batch(i, 17)
				fromCfg.Advance(b)
				fromOpts.Advance(b)
			}
			if got, want := fromCfg.Sample(), fromOpts.Sample(); !reflect.DeepEqual(got, want) {
				t.Fatalf("config-built sample diverges from option-built sample:\n got %v\nwant %v", got, want)
			}
		})
	}
}

// TestConfigJSONRoundTrip checks that a config survives JSON, including
// the not-set/zero distinction of pointer fields.
func TestConfigJSONRoundTrip(t *testing.T) {
	in := tbs.Config{Scheme: "rtbs", Lambda: ptr(0.0), MaxSize: ptr(100)}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out tbs.Config
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip changed config: %+v -> %+v", in, out)
	}
	if out.Seed != nil || out.Horizon != nil {
		t.Fatal("unset fields became set through JSON")
	}
}

func TestConfigRejections(t *testing.T) {
	cases := []struct {
		name string
		cfg  tbs.Config
	}{
		{"unknown scheme", tbs.Config{Scheme: "nope"}},
		{"rejected option", tbs.Config{Scheme: "window", MaxSize: ptr(10), Lambda: ptr(0.1)}},
		{"missing required", tbs.Config{Scheme: "rtbs", Lambda: ptr(0.1)}},
		{"invalid value", tbs.Config{Scheme: "rtbs", Lambda: ptr(-1.0), MaxSize: ptr(10)}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.cfg.Validate(); err == nil {
				t.Fatalf("Validate(%+v) = nil, want error", c.cfg)
			}
			if _, err := tbs.NewFromConfig[int](c.cfg); err == nil {
				t.Fatalf("NewFromConfig(%+v) = nil error, want error", c.cfg)
			}
		})
	}
}

// TestConfigSeedIgnoredWhenUnaccepted: a seed on a seedless scheme is
// dropped rather than rejected, so keyed registries can re-seed uniformly.
func TestConfigSeedIgnoredWhenUnaccepted(t *testing.T) {
	cfg := tbs.Config{Scheme: "window", MaxSize: ptr(10), Seed: ptr(uint64(99))}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if _, err := tbs.NewFromConfig[int](cfg); err != nil {
		t.Fatalf("NewFromConfig: %v", err)
	}
}

// TestRestrictedTo: the full-flag-set config narrows to exactly what each
// scheme accepts, and the result constructs for every scheme.
func TestRestrictedTo(t *testing.T) {
	full := tbs.Config{
		Lambda: ptr(0.2), MaxSize: ptr(30), MeanBatch: ptr(10.0),
		Horizon: ptr(5.0), Seed: ptr(uint64(7)),
	}
	for _, info := range tbs.Schemes() {
		t.Run(info.Name, func(t *testing.T) {
			cfg, err := full.RestrictedTo(info.Name)
			if err != nil {
				t.Fatal(err)
			}
			if cfg.Scheme != info.Name {
				t.Fatalf("scheme = %q, want %q", cfg.Scheme, info.Name)
			}
			if err := cfg.Validate(); err != nil {
				t.Fatalf("restricted config invalid: %v", err)
			}
			if _, err := tbs.NewFromConfig[int](cfg); err != nil {
				t.Fatalf("NewFromConfig: %v", err)
			}
			if cfg.Lambda != nil && !info.Accepts(tbs.OptLambda) {
				t.Fatal("lambda survived restriction for a scheme that rejects it")
			}
			if cfg.Horizon != nil && !info.Accepts(tbs.OptHorizon) {
				t.Fatal("horizon survived restriction for a scheme that rejects it")
			}
		})
	}
	if _, err := full.RestrictedTo("no-such-scheme"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestWithSeedCopies(t *testing.T) {
	base := tbs.Config{Scheme: "rtbs", Lambda: ptr(0.1), MaxSize: ptr(10)}
	derived := base.WithSeed(42)
	if base.Seed != nil {
		t.Fatal("WithSeed mutated the receiver")
	}
	if derived.Seed == nil || *derived.Seed != 42 {
		t.Fatalf("derived seed = %v, want 42", derived.Seed)
	}
}

// TestDeriveSeed checks determinism and key separation.
func TestDeriveSeed(t *testing.T) {
	if tbs.DeriveSeed(1, "alpha") != tbs.DeriveSeed(1, "alpha") {
		t.Fatal("DeriveSeed is not deterministic")
	}
	seen := map[uint64]string{}
	for _, key := range []string{"a", "b", "aa", "ab", "stream-1", "stream-2", ""} {
		s := tbs.DeriveSeed(7, key)
		if prev, dup := seen[s]; dup {
			t.Fatalf("DeriveSeed collision between %q and %q", prev, key)
		}
		seen[s] = key
	}
	if tbs.DeriveSeed(1, "k") == tbs.DeriveSeed(2, "k") {
		t.Fatal("base seed does not separate derived seeds")
	}
}

// TestConcurrentParallelReaders is the RWMutex regression test: many
// readers hammer every read-locked path while writers advance, under
// -race. A pure-Sample scheme (ttbs) exercises the shared read path; rtbs
// exercises the mutating-Sample fallback to the write lock.
func TestConcurrentParallelReaders(t *testing.T) {
	for _, scheme := range []string{"ttbs", "rtbs"} {
		t.Run(scheme, func(t *testing.T) {
			info, err := tbs.Lookup(scheme)
			if err != nil {
				t.Fatal(err)
			}
			base, err := tbs.New[int](scheme, fullOptions(info)...)
			if err != nil {
				t.Fatal(err)
			}
			cs := tbs.NewConcurrent(base)
			cs.Advance(batch(1, 50))

			readers := 4 * runtime.GOMAXPROCS(0)
			if readers < 8 {
				readers = 8
			}
			var wg sync.WaitGroup
			stop := make(chan struct{})
			for i := 0; i < readers; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						cs.Sample()
						cs.ExpectedSize()
						cs.Scheme()
						tbs.Weight[int](cs)
						tbs.Now[int](cs)
						tbs.InclusionProbability[int](cs, 0.5)
					}
				}()
			}
			for i := 2; i <= 30; i++ {
				cs.Advance(batch(i, 20))
				if _, err := cs.Snapshot(); err != nil {
					t.Error(err)
					break
				}
			}
			close(stop)
			wg.Wait()
			if got := cs.ExpectedSize(); got <= 0 {
				t.Fatalf("ExpectedSize = %v after concurrent load, want > 0", got)
			}
		})
	}
}
