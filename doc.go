// Package repro is a from-scratch Go reproduction of Hentschel, Haas and
// Tian, "Temporally-Biased Sampling for Online Model Management"
// (EDBT 2018). The root package holds the repository-level benchmark
// harness (bench_test.go).
//
// The supported public API is the tbs package — a scheme registry,
// functional-options constructor, unified checkpoint envelope, and
// concurrency wrapper over every sampler:
//
//   - tbs — the public façade; start here
//
// The implementation lives under internal/ and may change freely:
//
//   - internal/core — the T-TBS and R-TBS samplers and baselines
//   - internal/dist — the simulated distributed D-R-TBS / D-T-TBS
//     implementations of Section 5
//   - internal/ml, internal/datagen — the model-retraining substrate
//   - internal/manage — the predict→sample→retrain loop and policies
//   - internal/experiments — drivers for every table and figure
//
// See README.md for a tour and EXPERIMENTS.md for the experiment index
// and paper-vs-measured notes.
package repro
