// Package repro is a from-scratch Go reproduction of Hentschel, Haas and
// Tian, "Temporally-Biased Sampling for Online Model Management"
// (EDBT 2018). The root package holds the repository-level benchmark
// harness (bench_test.go); the library lives under internal/:
//
//   - internal/core — the T-TBS and R-TBS samplers and baselines
//   - internal/dist — the simulated distributed implementations
//   - internal/ml, internal/datagen — the model-retraining substrate
//   - internal/experiments — drivers for every table and figure
//
// See README.md for a tour and EXPERIMENTS.md for paper-vs-measured
// results.
package repro
