// Command docslint is the CI documentation gate: it walks every package
// under the given roots (default ./internal, ./tbs, and ./cmd) and fails
// when a package has no package-level doc comment on any of its non-test
// files.
//
// The bar is deliberately minimal — one real doc comment per package, not
// per identifier — because the package comment is the entry point godoc,
// editors, and new contributors all read first, and it is the piece that
// silently rots when a package is split or renamed.
//
// Usage (as CI runs it):
//
//	go run ./cmd/docslint ./internal ./tbs ./cmd
//
// Multiple roots may be given; each is walked recursively. Directories
// named testdata and files ending in _test.go are ignored.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"./internal", "./tbs", "./cmd"}
	}
	var missing []string
	for _, root := range roots {
		if err := lintRoot(root, &missing); err != nil {
			fmt.Fprintf(os.Stderr, "docslint: %v\n", err)
			os.Exit(2)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		fmt.Fprintln(os.Stderr, "docslint: packages missing a package doc comment:")
		for _, p := range missing {
			fmt.Fprintf(os.Stderr, "  %s\n", p)
		}
		os.Exit(1)
	}
	fmt.Println("docslint: every package has a package doc comment")
}

// lintRoot walks one directory tree and appends each documented-package
// violation to missing.
func lintRoot(root string, missing *[]string) error {
	return filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if d.Name() == "testdata" || strings.HasPrefix(d.Name(), ".") {
			if path != root {
				return filepath.SkipDir
			}
		}
		ok, hasGo, err := packageDocumented(path)
		if err != nil {
			return err
		}
		if hasGo && !ok {
			*missing = append(*missing, path)
		}
		return nil
	})
}

// packageDocumented reports whether the directory holds non-test Go files
// (hasGo) and whether at least one of them carries a package doc comment.
func packageDocumented(dir string) (documented, hasGo bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, false, err
	}
	fset := token.NewFileSet()
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		hasGo = true
		// ParseComments + PackageClauseOnly: just the header, so linting
		// stays fast no matter how large the tree grows.
		f, perr := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.PackageClauseOnly)
		if perr != nil {
			return false, hasGo, fmt.Errorf("parse %s: %w", filepath.Join(dir, name), perr)
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			documented = true
		}
	}
	return documented, hasGo, nil
}
