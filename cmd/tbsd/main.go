// Command tbsd serves temporally-biased samples over HTTP: one lazily
// created sampler per stream key, all built from one configured scheme,
// with wall-clock batch boundaries, periodic checkpointing, and Prometheus
// text metrics. See internal/server for the architecture and README.md
// for a curl quickstart.
//
// Usage:
//
//	tbsd -addr :8377 -scheme rtbs -lambda 0.07 -n 1000 \
//	     -batch-interval 10s -checkpoint-dir /var/lib/tbsd
//	tbsd -config tbsd.json            # sampler config from JSON instead
//
// API:
//
//	POST /v1/streams/{key}/items     ingest (JSON array = bulk, else one
//	                                 item); ?advance=true closes the batch.
//	                                 With Content-Type application/x-ndjson
//	                                 the body streams one JSON value per
//	                                 line through the sharded zero-copy
//	                                 decoder; ?batch=N closes a pipelined
//	                                 batch boundary every N items
//	POST /v1/streams/{key}/advance   explicit batch boundary
//	GET  /v1/streams/{key}/sample    realized sample
//	GET  /v1/streams/{key}/stats     size/weight/clock bookkeeping
//	DELETE /v1/streams/{key}         delete the stream (registry entry,
//	                                 checkpoint file and WAL history);
//	                                 later reads 404, later ingest
//	                                 recreates it fresh
//	GET  /v1/streams                 enumerate stream keys
//	PUT  /v1/streams/{key}/model     attach a managed model (learner
//	                                 knn|linreg|nb, policy always|every:K|
//	                                 drift); labeled items are JSON rows
//	                                 {"x":[...],"y":N} on the ordinary
//	                                 ingest paths
//	POST /v1/streams/{key}/model/predict   predict with the deployed model
//	GET  /v1/streams/{key}/model/stats     batch error, retrains, staleness
//	POST /v1/streams/{key}/handoff   migrate the stream to another node
//	                                 (?target=http://host:port); the source
//	                                 freezes the stream, ships its state and
//	                                 WAL tail, tombstones it locally, and
//	                                 later requests answer 421 with the new
//	                                 home
//	POST /v1/streams/{key}/adopt     target side of a handoff (internal)
//	GET  /metrics                    Prometheus text metrics
//	GET  /healthz                    liveness
//	GET  /readyz                     readiness (503 until boot restore
//	                                 completes, 503 again while draining)
//
// With a model attached, every batch boundary scores the deployed model
// on the closed batch and retrains it from the stream's current
// temporally-biased sample when the policy fires; training runs on
// -retrain-workers background workers and the new model is swapped in
// atomically, so ingest and predict never wait on a training run. Model,
// policy state and counters ride the per-stream checkpoint.
//
// Batch boundaries are applied asynchronously by -shards engine workers,
// each draining a bounded mailbox of -queue closed batches (key-affine, so
// per-stream order is preserved); a full mailbox applies backpressure to
// that worker's streams. -queue 0 disables the engine and applies batches
// inline.
//
// On SIGINT/SIGTERM the daemon drains HTTP, stops the background loops,
// and writes a final checkpoint so a restart resumes every stream's exact
// stochastic process.
//
// With -wal the daemon also journals every acknowledged operation to a
// write-ahead log under <checkpoint-dir>/wal before acknowledging it
// (group-commit fsync by default; see -wal-fsync), and boot replays the
// log tail on top of the newest checkpoints — so even a kill -9 loses at
// most the last un-fsynced group, not the traffic since the last
// periodic checkpoint. Checkpoint passes double as WAL compaction.
//
// With -max-resident and/or -idle-after (memory tiering) the daemon keeps
// only the hottest streams' state in memory: a background sweep hibernates
// least-recently-used idle streams down to their checkpoint files, and a
// request touching a hibernated stream rehydrates it transparently through
// the crash-recovery path (checkpoint + WAL tail). This bounds RSS by the
// working set rather than the total tenant count — a node can own millions
// of streams while holding only -max-resident of them resident. See the
// Operations section of README.md for capacity planning.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
	"repro/tbs"
)

func main() {
	var (
		addr        = flag.String("addr", ":8377", "listen address (use :0 for an ephemeral port)")
		advertise   = flag.String("advertise", "", "URL peers use to reach this node, e.g. http://10.0.0.5:8377 (default: derived from -addr); identifies this node in handoff envelopes and logs")
		configPath  = flag.String("config", "", "JSON file holding the sampler config (overrides the scheme flags)")
		scheme      = flag.String("scheme", "rtbs", "sampling scheme for every stream (see tbstream -schemes)")
		lambda      = flag.Float64("lambda", 0.07, "decay rate per batch interval")
		n           = flag.Int("n", 1000, "sample size bound / target per stream")
		meanBatch   = flag.Float64("meanbatch", 100, "assumed mean batch size (T-TBS only)")
		horizon     = flag.Float64("horizon", 10, "time-window horizon in batches (window schemes only)")
		seed        = flag.Uint64("seed", 1, "base RNG seed; per-stream seeds are derived from it")
		shards      = flag.Int("shards", 16, "lock stripes in the keyed registry and engine shard workers")
		queue       = flag.Int("queue", 128, "bounded mailbox depth per engine worker (0 = apply batches inline, no engine)")
		retrainW    = flag.Int("retrain-workers", 2, "background workers training managed models (0 = retrain inline at the batch boundary)")
		batchIv     = flag.Duration("batch-interval", 0, "wall-clock batch boundary period for every stream (0 = explicit /advance only)")
		ckptDir     = flag.String("checkpoint-dir", "", "directory for per-stream checkpoints (restore on boot, save periodically and on shutdown)")
		ckptIv      = flag.Duration("checkpoint-interval", 30*time.Second, "background checkpoint period")
		walOn       = flag.Bool("wal", false, "journal every acknowledged operation to <checkpoint-dir>/wal and replay it on boot; a kill -9 then loses at most the last un-fsynced group instead of a checkpoint interval")
		walFsync    = flag.String("wal-fsync", "group", "WAL durability policy: group (one fsync per concurrent batch of requests), always (fsync per record), off (OS page cache only)")
		quarantine  = flag.Bool("restore-quarantine", false, "boot past a corrupt checkpoint file by renaming it to *.corrupt instead of failing (default: strict fail)")
		maxPending  = flag.Int("max-pending", 1<<20, "max items in one stream's open batch (negative = unbounded)")
		maxStreams  = flag.Int("max-streams", 1<<16, "max live streams; creation beyond it gets 429 (negative = unbounded)")
		maxResident = flag.Int("max-resident", 0, "max streams resident in memory; beyond it the least-recently-used idle streams hibernate to their checkpoint files and rehydrate on touch (0 = unbounded; requires -checkpoint-dir)")
		idleAfter   = flag.Duration("idle-after", 0, "hibernate any stream untouched for this long, regardless of -max-resident (0 = never; requires -checkpoint-dir)")
		logFormat   = flag.String("log-format", "text", "log output format: text or json")
		logLevel    = flag.String("log-level", "info", "minimum log level: debug, info, warn, error (debug also emits one line per traced request)")
		debugAddr   = flag.String("debug-addr", "", "opt-in debug listener (pprof, runtime gauges, trace ring), e.g. 127.0.0.1:6060; empty disables")
		traceRing   = flag.Int("trace-ring", obs.DefaultRingSize, "recent-trace ring capacity for /debug/trace/recent (0 disables tracing entirely)")
	)
	flag.Parse()
	logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tbsd:", err)
		os.Exit(2)
	}
	logger = logger.With("app", "tbsd")
	fatal := func(args ...any) {
		fmt.Fprintln(os.Stderr, append([]any{"tbsd:"}, args...)...)
		os.Exit(2)
	}

	cfg, err := samplerConfig(*configPath, *scheme, *lambda, *n, *meanBatch, *horizon, *seed)
	if err != nil {
		fatal(err)
	}
	walDir := ""
	if *walOn {
		if *ckptDir == "" {
			fatal("-wal requires -checkpoint-dir (checkpoints are the WAL's compaction step)")
		}
		walDir = filepath.Join(*ckptDir, "wal")
	}
	queueDepth := *queue
	if queueDepth <= 0 {
		queueDepth = -1 // Options semantics: negative disables the engine.
	}
	retrainWorkers := *retrainW
	if retrainWorkers <= 0 {
		retrainWorkers = -1 // Options semantics: negative disables the lane.
	}
	adv := *advertise
	if adv == "" {
		adv = "http://" + *addr
	}
	var tracer *obs.Tracer
	if *traceRing > 0 {
		tracer = obs.NewTracer(*traceRing, logger)
	}
	srv, err := server.New(server.Options{
		Sampler:            cfg,
		Advertise:          adv,
		Shards:             *shards,
		QueueDepth:         queueDepth,
		RetrainWorkers:     retrainWorkers,
		BatchInterval:      *batchIv,
		CheckpointDir:      *ckptDir,
		CheckpointInterval: *ckptIv,
		WALDir:             walDir,
		WALFsync:           *walFsync,
		RestoreQuarantine:  *quarantine,
		MaxPendingItems:    *maxPending,
		MaxStreams:         *maxStreams,
		MaxResident:        *maxResident,
		IdleAfter:          *idleAfter,
		Logger:             logger,
		Trace:              tracer,
	})
	if err != nil {
		fatal(err)
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	logger.Info(fmt.Sprintf("listening on %s (scheme %s)", lis.Addr(), cfg.Scheme),
		"addr", lis.Addr().String(), "scheme", string(cfg.Scheme))

	var debugSrv *http.Server
	if *debugAddr != "" {
		dlis, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatal(err)
		}
		debugSrv = &http.Server{Handler: obs.NewDebugMux(tracer)}
		logger.Info("debug listener on "+dlis.Addr().String(), "addr", dlis.Addr().String())
		go func() {
			if err := debugSrv.Serve(dlis); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "err", err)
			}
		}()
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	srv.Start()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(lis) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	exitCode := 0
	select {
	case s := <-sig:
		logger.Info("received signal, shutting down", "signal", s.String())
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			// A dead listener is a failure even though shutdown (and its
			// final checkpoint) still proceeds; the supervisor must see a
			// nonzero exit so it restarts the daemon.
			logger.Error("serve failed", "err", err)
			exitCode = 1
		}
	}

	// Separate deadlines: a slow HTTP drain must not eat into the final
	// checkpoint's budget.
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancelDrain()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		logger.Error("http shutdown failed", "err", err)
	}
	if debugSrv != nil {
		_ = debugSrv.Close()
	}
	stopCtx, cancelStop := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancelStop()
	if err := srv.Stop(stopCtx); err != nil {
		logger.Error("stop failed", "err", err)
		exitCode = 1
	}
	logger.Info("shutdown complete")
	os.Exit(exitCode)
}

// samplerConfig builds the per-stream sampler config: from a JSON file
// when -config is given, otherwise from the scheme flags — passing only
// the options the chosen scheme accepts, so e.g. -scheme window ignores
// the default -lambda rather than rejecting it.
func samplerConfig(path, scheme string, lambda float64, n int, meanBatch, horizon float64, seed uint64) (tbs.Config, error) {
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return tbs.Config{}, err
		}
		var cfg tbs.Config
		if err := json.Unmarshal(data, &cfg); err != nil {
			return tbs.Config{}, fmt.Errorf("config %s: %w", path, err)
		}
		if err := cfg.Validate(); err != nil {
			return tbs.Config{}, fmt.Errorf("config %s: %w", path, err)
		}
		return cfg, nil
	}
	cfg, err := tbs.Config{
		Lambda: &lambda, MaxSize: &n, MeanBatch: &meanBatch,
		Horizon: &horizon, Seed: &seed,
	}.RestrictedTo(scheme)
	if err != nil {
		return tbs.Config{}, err
	}
	if err := cfg.Validate(); err != nil {
		return tbs.Config{}, err
	}
	return cfg, nil
}
