// Command benchguard is the CI bench-regression gate: it compares a fresh
// tbsbench -json result against a committed baseline (BENCH_ingest.json
// for the ingest pipeline, BENCH_wal.json for the WAL fsync paths) and
// exits nonzero when any path's items/sec dropped by more than the
// tolerated fraction.
//
// Usage (as CI runs it):
//
//	go run ./cmd/tbsbench -exp ingest -quick -json /tmp/ingest.json
//	go run ./cmd/benchguard -baseline BENCH_ingest.json -current /tmp/ingest.json
//	go run ./cmd/tbsbench -exp wal -json /tmp/wal.json
//	go run ./cmd/benchguard -id wal -baseline BENCH_wal.json -current /tmp/wal.json -max-drop 0.50
//
// The default tolerance is generous (30%) because the committed baseline
// and the CI runner are different machines; the guard exists to catch
// order-of-magnitude pipeline regressions (an accidental per-item
// allocation, a lock reintroduced on the hot path), not single-digit
// noise.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

// minRateFlags collects repeatable -min-rate 'row=items/sec' absolute
// throughput floors.
type minRateFlags map[string]float64

func (m minRateFlags) String() string { return fmt.Sprint(map[string]float64(m)) }

func (m minRateFlags) Set(v string) error {
	row, rate, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want 'row=items/sec', got %q", v)
	}
	f, err := strconv.ParseFloat(strings.ReplaceAll(rate, ",", ""), 64)
	if err != nil || f <= 0 {
		return fmt.Errorf("bad rate in %q", v)
	}
	m[row] = f
	return nil
}

func main() {
	minRates := minRateFlags{}
	var (
		baseline = flag.String("baseline", "BENCH_ingest.json", "committed tbsbench -json baseline")
		current  = flag.String("current", "", "freshly measured tbsbench -json result")
		id       = flag.String("id", "ingest", "experiment record to gate (ingest, wal)")
		maxDrop  = flag.Float64("max-drop", 0.30, "tolerated fractional items/sec drop per path")
		ovBase   = flag.String("overhead-base", "", "within-run gate: baseline row label (e.g. 'http NDJSON engine')")
		ovRow    = flag.String("overhead-row", "", "within-run gate: instrumented row label (e.g. 'http NDJSON engine+trace')")
		maxOv    = flag.Float64("max-overhead", 0.05, "tolerated fractional items/sec drop of -overhead-row vs -overhead-base within the current run")
		ratBase  = flag.String("ratio-base", "", "within-run speedup gate: denominator row label (e.g. 'ndjson fast-path')")
		ratRow   = flag.String("ratio-row", "", "within-run speedup gate: numerator row label (e.g. 'x-tbs-bin')")
		minRatio = flag.Float64("min-ratio", 2.0, "required items/sec factor of -ratio-row over -ratio-base within the current run")
	)
	flag.Var(minRates, "min-rate", "absolute floor 'row=items/sec' on the current run (repeatable)")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchguard: need -current <tbsbench -json output>")
		flag.Usage()
		os.Exit(2)
	}
	lines, err := experiments.CompareBenchBaseline(*baseline, *current, *id, *maxDrop)
	for _, line := range lines {
		fmt.Println(line)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("benchguard: all paths within %.0f%% of baseline\n", 100**maxDrop)
	if *ovRow != "" && *ovBase != "" {
		// Row-vs-row inside the SAME run: both rows share the machine and
		// the moment, so the tolerance can be far tighter than the
		// cross-machine baseline gate above.
		lines, err := experiments.CompareRowOverhead(*current, *id, *ovBase, *ovRow, *maxOv)
		for _, line := range lines {
			fmt.Println(line)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if len(minRates) > 0 {
		// Absolute floors encode frozen acceptance targets (e.g. the
		// fast-path NDJSON row must stay ≥ 5× the PR 7 NDJSON baseline)
		// even after the committed bench file is refreshed past them.
		lines, err := experiments.RequireMinRates(*current, *id, minRates)
		for _, line := range lines {
			fmt.Println(line)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *ratRow != "" && *ratBase != "" {
		lines, err := experiments.RequireRowFactor(*current, *id, *ratBase, *ratRow, *minRatio)
		for _, line := range lines {
			fmt.Println(line)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
