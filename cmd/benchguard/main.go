// Command benchguard is the CI bench-regression gate: it compares a fresh
// tbsbench -json ingest result against the committed BENCH_ingest.json
// baseline and exits nonzero when any path's items/sec dropped by more
// than the tolerated fraction.
//
// Usage (as CI runs it):
//
//	go run ./cmd/tbsbench -exp ingest -quick -json /tmp/ingest.json
//	go run ./cmd/benchguard -baseline BENCH_ingest.json -current /tmp/ingest.json
//
// The default tolerance is generous (30%) because the committed baseline
// and the CI runner are different machines; the guard exists to catch
// order-of-magnitude pipeline regressions (an accidental per-item
// allocation, a lock reintroduced on the hot path), not single-digit
// noise.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		baseline = flag.String("baseline", "BENCH_ingest.json", "committed tbsbench -json baseline")
		current  = flag.String("current", "", "freshly measured tbsbench -json result")
		maxDrop  = flag.Float64("max-drop", 0.30, "tolerated fractional items/sec drop per path")
	)
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchguard: need -current <tbsbench -json output>")
		flag.Usage()
		os.Exit(2)
	}
	lines, err := experiments.CompareIngestBaseline(*baseline, *current, *maxDrop)
	for _, line := range lines {
		fmt.Println(line)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("benchguard: all paths within %.0f%% of baseline\n", 100**maxDrop)
}
