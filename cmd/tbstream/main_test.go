package main

import (
	"bytes"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"testing"
)

func lines(from, to int) string {
	var b strings.Builder
	for i := from; i <= to; i++ {
		fmt.Fprintf(&b, "%d\n", i)
	}
	return b.String()
}

// lastLine returns the final newline-terminated line of a run's output —
// the sample emitted at the last batch boundary.
func lastLine(t *testing.T, out *bytes.Buffer) string {
	t.Helper()
	all := strings.TrimRight(out.String(), "\n")
	if all == "" {
		t.Fatal("run produced no output")
	}
	parts := strings.Split(all, "\n")
	return parts[len(parts)-1]
}

func testConfig(checkpoint string) processorConfig {
	return processorConfig{
		scheme:     "rtbs",
		checkpoint: checkpoint,
		batchLines: 25,
		opts:       options{lambda: 0.2, n: 20, meanBatch: 25, seed: 3},
	}
}

// TestCheckpointRoundTrip is the tbstream regression test: a run split in
// two by a checkpoint + restart must emit exactly the same samples as one
// uninterrupted run — the resumed stochastic process is identical, batch
// boundary for batch boundary.
func TestCheckpointRoundTrip(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "ck.json")

	// Interrupted pipeline: lines 1–100 (4 batches), checkpoint at EOF,
	// then a second processor resumes from the file for lines 101–200.
	var out1, out2 bytes.Buffer
	p1, err := newProcessor(testConfig(ckpt), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.run(strings.NewReader(lines(1, 100)), &out1, io.Discard); err != nil {
		t.Fatal(err)
	}

	var resumeDiag bytes.Buffer
	p2, err := newProcessor(testConfig(ckpt), &resumeDiag)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resumeDiag.String(), "resumed rtbs") {
		t.Fatalf("second processor did not restore from checkpoint: %q", resumeDiag.String())
	}
	if err := p2.run(strings.NewReader(lines(101, 200)), &out2, io.Discard); err != nil {
		t.Fatal(err)
	}

	// Uninterrupted reference: lines 1–200 through one processor with the
	// same seed and batch boundaries, no checkpoint.
	cfg := testConfig("")
	ref, err := newProcessor(cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var refOut bytes.Buffer
	if err := ref.run(strings.NewReader(lines(1, 200)), &refOut, io.Discard); err != nil {
		t.Fatal(err)
	}

	// Every batch boundary's sample must match: the interrupted run's
	// output is the concatenation of both halves.
	got := out1.String() + out2.String()
	if got != refOut.String() {
		t.Fatalf("resumed run diverges from uninterrupted run\n got: %s\nwant: %s", got, refOut.String())
	}
	if last := lastLine(t, &refOut); !strings.HasPrefix(last, "[") {
		t.Fatalf("final sample is not a JSON array: %q", last)
	}
}

// TestProcessorBatchBoundaries: "---" closes a batch early and invalid
// JSON lines are skipped without aborting the stream.
func TestProcessorBatchBoundaries(t *testing.T) {
	p, err := newProcessor(processorConfig{
		scheme:     "brs",
		batchLines: 100,
		opts:       options{n: 5, seed: 1},
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	in := "1\n2\nnot json\n---\n3\n4\n"
	var out, diag bytes.Buffer
	if err := p.run(strings.NewReader(in), &out, &diag); err != nil {
		t.Fatal(err)
	}
	// One flush from "---", one from the partial batch at EOF.
	if got := strings.Count(out.String(), "\n"); got != 2 {
		t.Fatalf("got %d sample lines, want 2:\n%s", got, out.String())
	}
	if !strings.Contains(diag.String(), "invalid JSON") {
		t.Fatalf("invalid line not reported: %q", diag.String())
	}
}

// TestProcessorRejectsBadConfig mirrors the old flag validation.
func TestProcessorRejectsBadConfig(t *testing.T) {
	if _, err := newProcessor(processorConfig{scheme: "rtbs", batchLines: 0}, io.Discard); err == nil {
		t.Fatal("batchLines=0 accepted")
	}
	if _, err := newProcessor(processorConfig{scheme: "no-such", batchLines: 1}, io.Discard); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}
