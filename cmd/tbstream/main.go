// Command tbstream maintains a temporally-biased sample over a line-oriented
// stream, demonstrating the public tbs API in a real pipeline. It reads JSON
// values (one per line) from stdin, groups them into batches, and maintains
// a sample under any registered scheme; on each batch boundary it writes the
// current sample (one JSON array) to stdout.
//
// Usage:
//
//	some-producer | tbstream -scheme rtbs -lambda 0.07 -n 1000 -batch-lines 100
//	tbstream -schemes                  # list available schemes
//
// Flags:
//
//	-scheme       sampling scheme, by registry name or alias (default rtbs)
//	-schemes      list registered schemes and exit
//	-lambda       decay rate λ per batch (default 0.07)
//	-n            sample size bound / target (default 1000)
//	-horizon      time-window horizon in batches (default 10)
//	-batch-lines  lines per batch (default 100); a literal "---" line also
//	              closes the current batch
//	-seed         RNG seed (default 1)
//	-stats        also print W/C bookkeeping to stderr per batch
//	-checkpoint   checkpoint file: restored on start if it exists, saved on
//	              EOF and on SIGINT/SIGTERM, so a restarted pipeline resumes
//	              the exact same stochastic process
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"repro/tbs"
)

func main() {
	var (
		scheme     = flag.String("scheme", "rtbs", "sampling scheme (see -schemes)")
		schemes    = flag.Bool("schemes", false, "list registered schemes and exit")
		lambda     = flag.Float64("lambda", 0.07, "decay rate per batch")
		n          = flag.Int("n", 1000, "sample size bound / target")
		horizon    = flag.Float64("horizon", 10, "time-window horizon in batches")
		batchLines = flag.Int("batch-lines", 100, "lines per batch")
		seed       = flag.Uint64("seed", 1, "RNG seed")
		stats      = flag.Bool("stats", false, "print weight bookkeeping to stderr")
		checkpoint = flag.String("checkpoint", "", "checkpoint file (restore on start, save on exit)")
	)
	flag.Parse()

	if *schemes {
		for _, s := range tbs.Schemes() {
			fmt.Printf("%-12s %s\n", s.Name, s.Description)
			fmt.Printf("%-12s   options: %v, required: %v\n", "", s.Options, s.Required)
		}
		return
	}
	if *batchLines < 1 {
		usagef("-batch-lines must be positive")
	}

	sampler, err := makeSampler(*scheme, *checkpoint, options{
		lambda: *lambda, n: *n, horizon: *horizon,
		meanBatch: float64(*batchLines), seed: *seed,
	})
	if err != nil {
		usagef("%v", err)
	}
	// The signal handler snapshots concurrently with the main loop, so the
	// sampler goes behind the thread-safe wrapper.
	cs := tbs.NewConcurrent(sampler)

	// The EOF path and the signal handler can race to save; the Once makes
	// sure exactly one checkpoint write happens.
	var saveOnce sync.Once
	save := func() {
		saveOnce.Do(func() {
			if err := saveCheckpoint(cs, *checkpoint); err != nil {
				fatalf("%v", err)
			}
		})
	}
	if *checkpoint != "" {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		go func() {
			<-sig
			save()
			os.Exit(0)
		}()
	}

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 0, 1<<20), 1<<24)
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	enc := json.NewEncoder(out)

	flush := func(batch []json.RawMessage) error {
		cs.Advance(batch)
		if *stats {
			line := fmt.Sprintf("C=%.2f", cs.ExpectedSize())
			if t, ok := tbs.Now[json.RawMessage](cs); ok {
				line = fmt.Sprintf("t=%.0f %s", t, line)
			}
			if w, lam, ok := tbs.Weight[json.RawMessage](cs); ok {
				line += fmt.Sprintf(" W=%.2f lambda=%.3f", w, lam)
			}
			fmt.Fprintln(os.Stderr, line)
		}
		if err := enc.Encode(cs.Sample()); err != nil {
			return err
		}
		return out.Flush()
	}

	var batch []json.RawMessage
	lineno := 0
	for in.Scan() {
		lineno++
		line := in.Bytes()
		if string(line) == "---" {
			if err := flush(batch); err != nil {
				fatalf("%v", err)
			}
			batch = batch[:0]
			continue
		}
		if !json.Valid(line) {
			fmt.Fprintf(os.Stderr, "tbstream: line %d: invalid JSON, skipping\n", lineno)
			continue
		}
		batch = append(batch, json.RawMessage(append([]byte(nil), line...)))
		if len(batch) >= *batchLines {
			if err := flush(batch); err != nil {
				fatalf("%v", err)
			}
			batch = batch[:0]
		}
	}
	if err := in.Err(); err != nil {
		fatalf("read: %v", err)
	}
	if len(batch) > 0 {
		if err := flush(batch); err != nil {
			fatalf("%v", err)
		}
	}
	if *checkpoint != "" {
		save()
	}
}

type options struct {
	lambda, horizon, meanBatch float64
	n                          int
	seed                       uint64
}

// makeSampler restores the sampler from the checkpoint file when one
// exists, and otherwise constructs it fresh, passing exactly the options
// the chosen scheme accepts (consulting the registry metadata).
func makeSampler(scheme, checkpoint string, o options) (tbs.Sampler[json.RawMessage], error) {
	info, err := tbs.Lookup(scheme)
	if err != nil {
		return nil, err
	}
	if checkpoint != "" {
		data, err := os.ReadFile(checkpoint)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			// First run: fall through to a fresh sampler.
		case err != nil:
			return nil, err
		default:
			var snap tbs.Snapshot
			if err := json.Unmarshal(data, &snap); err != nil {
				return nil, fmt.Errorf("checkpoint %s: %w", checkpoint, err)
			}
			if snap.Scheme != info.Name {
				return nil, fmt.Errorf("checkpoint %s holds scheme %q, but -scheme is %q",
					checkpoint, snap.Scheme, info.Name)
			}
			s, err := tbs.Restore[json.RawMessage](snap)
			if err != nil {
				return nil, fmt.Errorf("checkpoint %s: %w", checkpoint, err)
			}
			fmt.Fprintf(os.Stderr, "tbstream: resumed %s from %s (C=%.2f)\n",
				snap.Scheme, checkpoint, s.ExpectedSize())
			return s, nil
		}
	}

	var opts []tbs.Option
	for _, name := range info.Options {
		switch name {
		case tbs.OptLambda:
			opts = append(opts, tbs.Lambda(o.lambda))
		case tbs.OptMaxSize:
			opts = append(opts, tbs.MaxSize(o.n))
		case tbs.OptSeed:
			opts = append(opts, tbs.Seed(o.seed))
		case tbs.OptMeanBatch:
			opts = append(opts, tbs.MeanBatch(o.meanBatch))
		case tbs.OptHorizon:
			opts = append(opts, tbs.Horizon(o.horizon))
		}
	}
	return tbs.New[json.RawMessage](info.Name, opts...)
}

// saveCheckpoint writes the snapshot atomically (temp file + rename).
func saveCheckpoint(s tbs.Sampler[json.RawMessage], path string) error {
	snap, err := s.Snapshot()
	if err != nil {
		return err
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// fatalf reports a runtime failure (exit 1); usagef reports a
// configuration error the operator must fix before retrying (exit 2).
func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tbstream: "+format+"\n", args...)
	os.Exit(1)
}

func usagef(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tbstream: "+format+"\n", args...)
	os.Exit(2)
}
