// Command tbstream maintains a temporally-biased sample over a line-oriented
// stream, demonstrating the public tbs API in a real pipeline. It reads JSON
// values (one per line) from stdin, groups them into batches, and maintains
// a sample under any registered scheme; on each batch boundary it writes the
// current sample (one JSON array) to stdout.
//
// Usage:
//
//	some-producer | tbstream -scheme rtbs -lambda 0.07 -n 1000 -batch-lines 100
//	tbstream -schemes                  # list available schemes
//
// Flags:
//
//	-scheme       sampling scheme, by registry name or alias (default rtbs)
//	-schemes      list registered schemes and exit
//	-lambda       decay rate λ per batch (default 0.07)
//	-n            sample size bound / target (default 1000)
//	-horizon      time-window horizon in batches (default 10)
//	-batch-lines  lines per batch (default 100); a literal "---" line also
//	              closes the current batch
//	-seed         RNG seed (default 1)
//	-stats        also print W/C bookkeeping to stderr per batch
//	-checkpoint   checkpoint file: restored on start if it exists, saved on
//	              EOF and on SIGINT/SIGTERM, so a restarted pipeline resumes
//	              the exact same stochastic process
//	-emit-bin     emit N one-float rows as application/x-tbs-bin frames to
//	              stdout and exit — a generator for smoke-testing the
//	              binary ingest path from shell scripts
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"repro/internal/atomicfile"
	"repro/internal/wire"
	"repro/tbs"
)

func main() {
	var (
		scheme     = flag.String("scheme", "rtbs", "sampling scheme (see -schemes)")
		schemes    = flag.Bool("schemes", false, "list registered schemes and exit")
		lambda     = flag.Float64("lambda", 0.07, "decay rate per batch")
		n          = flag.Int("n", 1000, "sample size bound / target")
		horizon    = flag.Float64("horizon", 10, "time-window horizon in batches")
		batchLines = flag.Int("batch-lines", 100, "lines per batch")
		seed       = flag.Uint64("seed", 1, "RNG seed")
		stats      = flag.Bool("stats", false, "print weight bookkeeping to stderr")
		checkpoint = flag.String("checkpoint", "", "checkpoint file (restore on start, save on exit)")
		emitBin    = flag.Int("emit-bin", 0, "emit N one-float rows as application/x-tbs-bin frames to stdout and exit")
	)
	flag.Parse()

	if *emitBin > 0 {
		if err := emitBinFrames(os.Stdout, *emitBin); err != nil {
			fatalf("%v", err)
		}
		return
	}

	if *schemes {
		for _, s := range tbs.Schemes() {
			fmt.Printf("%-12s %s\n", s.Name, s.Description)
			fmt.Printf("%-12s   options: %v, required: %v\n", "", s.Options, s.Required)
		}
		return
	}

	p, err := newProcessor(processorConfig{
		scheme:     *scheme,
		checkpoint: *checkpoint,
		batchLines: *batchLines,
		stats:      *stats,
		opts: options{
			lambda: *lambda, n: *n, horizon: *horizon,
			meanBatch: float64(*batchLines), seed: *seed,
		},
	}, os.Stderr)
	if err != nil {
		usagef("%v", err)
	}

	if *checkpoint != "" {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		go func() {
			<-sig
			if err := p.save(); err != nil {
				fatalf("%v", err)
			}
			os.Exit(0)
		}()
	}

	if err := p.run(os.Stdin, os.Stdout, os.Stderr); err != nil {
		fatalf("%v", err)
	}
}

type options struct {
	lambda, horizon, meanBatch float64
	n                          int
	seed                       uint64
}

type processorConfig struct {
	scheme     string
	checkpoint string
	batchLines int
	stats      bool
	opts       options
}

// processor is the extracted run loop of tbstream, constructed apart from
// main so tests can drive it in-process: feed lines, checkpoint, build a
// second processor from the same file, and assert the resumed stochastic
// process matches an uninterrupted one.
type processor struct {
	cfg processorConfig
	// The signal handler snapshots concurrently with the run loop, so the
	// sampler goes behind the thread-safe wrapper.
	sampler *tbs.Concurrent[json.RawMessage]
	// The EOF path and the signal handler can race to save; the Once
	// makes sure exactly one checkpoint write happens.
	saveOnce sync.Once
	saveErr  error
}

// newProcessor validates the configuration and builds the sampler,
// restoring it from the checkpoint file when one exists (diagnostics on
// the restore go to errw).
func newProcessor(cfg processorConfig, errw io.Writer) (*processor, error) {
	if cfg.batchLines < 1 {
		return nil, errors.New("-batch-lines must be positive")
	}
	sampler, err := makeSampler(cfg.scheme, cfg.checkpoint, cfg.opts, errw)
	if err != nil {
		return nil, err
	}
	return &processor{cfg: cfg, sampler: tbs.NewConcurrent(sampler)}, nil
}

// save checkpoints the sampler at most once, from whichever of the EOF
// path and the signal handler gets there first.
func (p *processor) save() error {
	p.saveOnce.Do(func() {
		if p.cfg.checkpoint == "" {
			return
		}
		p.saveErr = saveCheckpoint(p.sampler, p.cfg.checkpoint)
	})
	return p.saveErr
}

// run consumes the line stream: every batchLines lines (or a literal "---"
// line) closes a batch, advances the sampler, and writes the realized
// sample as one JSON array to out. On EOF a partial batch is flushed and
// the checkpoint (when configured) is saved.
func (p *processor) run(in io.Reader, out, errw io.Writer) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	bw := bufio.NewWriter(out)
	defer bw.Flush()
	enc := json.NewEncoder(bw)

	flush := func(batch []json.RawMessage) error {
		p.sampler.Advance(batch)
		if p.cfg.stats {
			line := fmt.Sprintf("C=%.2f", p.sampler.ExpectedSize())
			if t, ok := tbs.Now[json.RawMessage](p.sampler); ok {
				line = fmt.Sprintf("t=%.0f %s", t, line)
			}
			if w, lam, ok := tbs.Weight[json.RawMessage](p.sampler); ok {
				line += fmt.Sprintf(" W=%.2f lambda=%.3f", w, lam)
			}
			fmt.Fprintln(errw, line)
		}
		if err := enc.Encode(p.sampler.Sample()); err != nil {
			return err
		}
		return bw.Flush()
	}

	var batch []json.RawMessage
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Bytes()
		if string(line) == "---" {
			if err := flush(batch); err != nil {
				return err
			}
			batch = batch[:0]
			continue
		}
		if !json.Valid(line) {
			fmt.Fprintf(errw, "tbstream: line %d: invalid JSON, skipping\n", lineno)
			continue
		}
		batch = append(batch, json.RawMessage(append([]byte(nil), line...)))
		if len(batch) >= p.cfg.batchLines {
			if err := flush(batch); err != nil {
				return err
			}
			batch = batch[:0]
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("read: %w", err)
	}
	if len(batch) > 0 {
		if err := flush(batch); err != nil {
			return err
		}
	}
	return p.save()
}

// makeSampler restores the sampler from the checkpoint file when one
// exists, and otherwise constructs it fresh, passing exactly the options
// the chosen scheme accepts (consulting the registry metadata).
func makeSampler(scheme, checkpoint string, o options, errw io.Writer) (tbs.Sampler[json.RawMessage], error) {
	info, err := tbs.Lookup(scheme)
	if err != nil {
		return nil, err
	}
	if checkpoint != "" {
		data, err := os.ReadFile(checkpoint)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			// First run: fall through to a fresh sampler.
		case err != nil:
			return nil, err
		default:
			var snap tbs.Snapshot
			if err := json.Unmarshal(data, &snap); err != nil {
				return nil, fmt.Errorf("checkpoint %s: %w", checkpoint, err)
			}
			if snap.Scheme != info.Name {
				return nil, fmt.Errorf("checkpoint %s holds scheme %q, but -scheme is %q",
					checkpoint, snap.Scheme, info.Name)
			}
			s, err := tbs.Restore[json.RawMessage](snap)
			if err != nil {
				return nil, fmt.Errorf("checkpoint %s: %w", checkpoint, err)
			}
			fmt.Fprintf(errw, "tbstream: resumed %s from %s (C=%.2f)\n",
				snap.Scheme, checkpoint, s.ExpectedSize())
			return s, nil
		}
	}

	cfg, err := tbs.Config{
		Lambda: &o.lambda, MaxSize: &o.n, MeanBatch: &o.meanBatch,
		Horizon: &o.horizon, Seed: &o.seed,
	}.RestrictedTo(info.Name)
	if err != nil {
		return nil, err
	}
	return tbs.NewFromConfig[json.RawMessage](cfg)
}

// saveCheckpoint writes the snapshot atomically.
func saveCheckpoint(s tbs.Sampler[json.RawMessage], path string) error {
	snap, err := s.Snapshot()
	if err != nil {
		return err
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	return atomicfile.WriteFile(path, data, 0o644)
}

// fatalf reports a runtime failure (exit 1); usagef reports a
// configuration error the operator must fix before retrying (exit 2).
func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tbstream: "+format+"\n", args...)
	os.Exit(1)
}

func usagef(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tbstream: "+format+"\n", args...)
	os.Exit(2)
}

// emitBinFrames writes n one-float value rows as x-tbs-bin frames of up
// to 512 rows each — a shell-scriptable generator for smoke-testing the
// binary ingest path (`tbstream -emit-bin 500 | curl --data-binary @-`).
func emitBinFrames(w io.Writer, n int) error {
	const rowsPerFrame = 512
	var buf []byte
	rows := make([][]float64, 0, rowsPerFrame)
	vals := make([]float64, n)
	for i := 0; i < n; i += rowsPerFrame {
		rows = rows[:0]
		for j := i; j < min(i+rowsPerFrame, n); j++ {
			vals[j] = float64((j*7919)%200000-100000) / 1000
			rows = append(rows, vals[j:j+1])
		}
		buf = wire.AppendFrame(buf[:0], rows)
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
