// Command tbstream maintains a temporally-biased sample over a line-oriented
// stream, demonstrating the library in a real pipeline. It reads JSON values
// (one per line) from stdin, groups them into batches by wall-clock ticks or
// by an explicit batch delimiter, and maintains an R-TBS sample; on each
// batch boundary it writes the current sample (one JSON array) to stdout.
//
// Usage:
//
//	some-producer | tbstream -lambda 0.07 -n 1000 -batch-lines 100
//
// Flags:
//
//	-lambda       decay rate λ per batch (default 0.07)
//	-n            maximum sample size (default 1000)
//	-batch-lines  lines per batch (default 100); a literal "---" line also
//	              closes the current batch
//	-seed         RNG seed (default 1)
//	-stats        also print W/C bookkeeping to stderr per batch
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/xrand"
)

func main() {
	var (
		lambda     = flag.Float64("lambda", 0.07, "decay rate per batch")
		n          = flag.Int("n", 1000, "maximum sample size")
		batchLines = flag.Int("batch-lines", 100, "lines per batch")
		seed       = flag.Uint64("seed", 1, "RNG seed")
		stats      = flag.Bool("stats", false, "print weight bookkeeping to stderr")
	)
	flag.Parse()
	if *batchLines < 1 {
		fmt.Fprintln(os.Stderr, "tbstream: -batch-lines must be positive")
		os.Exit(2)
	}

	sampler, err := core.NewRTBS[json.RawMessage](*lambda, *n, xrand.New(*seed))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tbstream: %v\n", err)
		os.Exit(2)
	}

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 0, 1<<20), 1<<24)
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	enc := json.NewEncoder(out)

	flush := func(batch []json.RawMessage) error {
		sampler.Advance(batch)
		if *stats {
			fmt.Fprintf(os.Stderr, "t=%.0f W=%.2f C=%.2f saturated=%v\n",
				sampler.Now(), sampler.TotalWeight(), sampler.ExpectedSize(), sampler.Saturated())
		}
		if err := enc.Encode(sampler.Sample()); err != nil {
			return err
		}
		return out.Flush()
	}

	var batch []json.RawMessage
	lineno := 0
	for in.Scan() {
		lineno++
		line := in.Bytes()
		if string(line) == "---" {
			if err := flush(batch); err != nil {
				fmt.Fprintf(os.Stderr, "tbstream: %v\n", err)
				os.Exit(1)
			}
			batch = batch[:0]
			continue
		}
		if !json.Valid(line) {
			fmt.Fprintf(os.Stderr, "tbstream: line %d: invalid JSON, skipping\n", lineno)
			continue
		}
		batch = append(batch, json.RawMessage(append([]byte(nil), line...)))
		if len(batch) >= *batchLines {
			if err := flush(batch); err != nil {
				fmt.Fprintf(os.Stderr, "tbstream: %v\n", err)
				os.Exit(1)
			}
			batch = batch[:0]
		}
	}
	if err := in.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "tbstream: read: %v\n", err)
		os.Exit(1)
	}
	if len(batch) > 0 {
		if err := flush(batch); err != nil {
			fmt.Fprintf(os.Stderr, "tbstream: %v\n", err)
			os.Exit(1)
		}
	}
}
