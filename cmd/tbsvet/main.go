// Command tbsvet runs the project's static analyzers (internal/analysis)
// over the module, go-vet style. It loads packages with `go list`, type
// checks them from source, runs every registered analyzer, prints each
// diagnostic as file:line:col: analyzer: message, and exits nonzero when
// anything is reported.
//
// Usage:
//
//	go run ./cmd/tbsvet ./...
//	go run ./cmd/tbsvet -analyzers zeroalloc,poolpair ./internal/...
//
// The analyzers and the invariants they enforce are documented in the
// ARCHITECTURE.md Invariants section and in each analyzer's package doc.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicfield"
	"repro/internal/analysis/metriclint"
	"repro/internal/analysis/poolpair"
	"repro/internal/analysis/walbeforeack"
	"repro/internal/analysis/zeroalloc"
)

// all registers every tbsvet analyzer.
var all = []*analysis.Analyzer{
	atomicfield.Analyzer,
	metriclint.Analyzer,
	poolpair.Analyzer,
	walbeforeack.Analyzer,
	zeroalloc.Analyzer,
}

func main() {
	names := flag.String("analyzers", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	selected := all
	if *names != "" {
		byName := make(map[string]*analysis.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		selected = nil
		for _, n := range strings.Split(*names, ",") {
			n = strings.TrimSpace(n)
			a, ok := byName[n]
			if !ok {
				fmt.Fprintf(os.Stderr, "tbsvet: unknown analyzer %q (have:", n)
				for _, a := range all {
					fmt.Fprintf(os.Stderr, " %s", a.Name)
				}
				fmt.Fprintln(os.Stderr, ")")
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tbsvet:", err)
		os.Exit(2)
	}
	loader := analysis.NewLoader(wd)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tbsvet:", err)
		os.Exit(2)
	}

	diags, err := analysis.RunAnalyzers(pkgs, selected)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tbsvet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
