// Command tbsbench regenerates the tables and figures of "Temporally-Biased
// Sampling for Online Model Management" (EDBT 2018).
//
// Usage:
//
//	tbsbench -list                 # list experiment IDs
//	tbsbench -exp fig7             # run one experiment
//	tbsbench -exp table1 -quick    # reduced replication for a fast pass
//	tbsbench -all                  # run everything
//	tbsbench -all -quick -seed 7   # fast full sweep, custom seed
//
// Each experiment prints the same rows or series that the paper reports;
// EXPERIMENTS.md records paper-vs-measured values.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment ID to run (see -list)")
		all   = flag.Bool("all", false, "run every experiment")
		list  = flag.Bool("list", false, "list experiment IDs and exit")
		quick = flag.Bool("quick", false, "reduced replication (fast, noisier)")
		plot  = flag.Bool("plot", false, "render series as ASCII sparklines instead of tables")
		seed  = flag.Uint64("seed", 1, "base random seed")
	)
	flag.Parse()

	if *list {
		for _, s := range experiments.Registry() {
			fmt.Printf("%-16s %s\n", s.ID, s.Title)
		}
		return
	}

	var specs []experiments.Spec
	switch {
	case *all:
		specs = experiments.Registry()
	case *exp != "":
		s, err := experiments.Lookup(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		specs = []experiments.Spec{s}
	default:
		fmt.Fprintln(os.Stderr, "tbsbench: need -exp <id>, -all, or -list")
		flag.Usage()
		os.Exit(2)
	}

	for _, s := range specs {
		start := time.Now()
		res, err := s.Run(*quick, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tbsbench: %s: %v\n", s.ID, err)
			os.Exit(1)
		}
		render := res.Format
		if *plot {
			render = res.Plot
		}
		if err := render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("(%s finished in %v)\n\n", s.ID, time.Since(start).Round(time.Millisecond))
	}
}
