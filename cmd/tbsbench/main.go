// Command tbsbench regenerates the tables and figures of "Temporally-Biased
// Sampling for Online Model Management" (EDBT 2018).
//
// Usage:
//
//	tbsbench -list                 # list experiment IDs
//	tbsbench -exp fig7             # run one experiment
//	tbsbench -exp table1 -quick    # reduced replication for a fast pass
//	tbsbench -all                  # run everything
//	tbsbench -all -quick -seed 7   # fast full sweep, custom seed
//	tbsbench -exp fig7 -json BENCH_fig7.json   # machine-readable results
//
// Each experiment prints the same rows or series that the paper reports;
// EXPERIMENTS.md records paper-vs-measured values. With -json the results
// are also written as a JSON array (experiment id, params, header, rows,
// notes, elapsed milliseconds), so bench trajectories can be recorded as
// BENCH_*.json files and diffed across PRs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/atomicfile"
	"repro/internal/experiments"
)

// runRecord is the machine-readable form of one experiment run. Allocs and
// AllocBytes are b.ReportAllocs-equivalent counters for the whole run
// (heap allocation count and bytes, from runtime.MemStats deltas), so
// BENCH_*.json trajectories expose allocation regressions, not just time.
type runRecord struct {
	ID         string     `json:"id"`
	Title      string     `json:"title"`
	Quick      bool       `json:"quick"`
	Seed       uint64     `json:"seed"`
	Header     []string   `json:"header"`
	Rows       [][]string `json:"rows"`
	Notes      []string   `json:"notes,omitempty"`
	ElapsedMS  int64      `json:"elapsedMs"`
	Allocs     uint64     `json:"allocs"`
	AllocBytes uint64     `json:"allocBytes"`
}

func main() {
	var (
		exp      = flag.String("exp", "", "experiment ID to run (see -list)")
		all      = flag.Bool("all", false, "run every experiment")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		quick    = flag.Bool("quick", false, "reduced replication (fast, noisier)")
		plot     = flag.Bool("plot", false, "render series as ASCII sparklines instead of tables")
		seed     = flag.Uint64("seed", 1, "base random seed")
		jsonPath = flag.String("json", "", "also write results to this file as JSON")
	)
	flag.Parse()
	// A dedicated bench process gets a dedicated GC budget: with the
	// default GOGC=100 a sub-second measurement window on a small heap
	// sees several full GC pacer cycles, and on a one-core runner their
	// mark assists move throughput rows by double-digit percent run to
	// run. 300 keeps the pacer off the hot loops without hiding real
	// allocation regressions — the allocs/item columns and their gates
	// are GC-independent. GOGC set in the environment still wins.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(300)
	}

	if *list {
		for _, s := range experiments.Registry() {
			fmt.Printf("%-16s %s\n", s.ID, s.Title)
		}
		return
	}

	var specs []experiments.Spec
	switch {
	case *all:
		specs = experiments.Registry()
	case *exp != "":
		s, err := experiments.Lookup(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		specs = []experiments.Spec{s}
	default:
		fmt.Fprintln(os.Stderr, "tbsbench: need -exp <id>, -all, or -list")
		flag.Usage()
		os.Exit(2)
	}

	var records []runRecord
	for _, s := range specs {
		var msBefore, msAfter runtime.MemStats
		runtime.ReadMemStats(&msBefore)
		start := time.Now()
		res, err := s.Run(*quick, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tbsbench: %s: %v\n", s.ID, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&msAfter)
		render := res.Format
		if *plot {
			render = res.Plot
		}
		if err := render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("(%s finished in %v)\n\n", s.ID, elapsed.Round(time.Millisecond))
		records = append(records, runRecord{
			ID:         res.ID,
			Title:      res.Title,
			Quick:      *quick,
			Seed:       *seed,
			Header:     res.Header,
			Rows:       res.Rows,
			Notes:      res.Notes,
			ElapsedMS:  elapsed.Milliseconds(),
			Allocs:     msAfter.Mallocs - msBefore.Mallocs,
			AllocBytes: msAfter.TotalAlloc - msBefore.TotalAlloc,
		})
	}
	if *jsonPath != "" {
		if err := writeJSONResults(*jsonPath, records); err != nil {
			fmt.Fprintf(os.Stderr, "tbsbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tbsbench: wrote %d result(s) to %s\n", len(records), *jsonPath)
	}
}

// writeJSONResults writes the run records atomically.
func writeJSONResults(path string, records []runRecord) error {
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	return atomicfile.WriteFile(path, append(data, '\n'), 0o644)
}
