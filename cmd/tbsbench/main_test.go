package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
)

// TestWriteJSONResults runs one fast experiment and checks the -json
// output round-trips with the fields a BENCH_*.json consumer needs.
func TestWriteJSONResults(t *testing.T) {
	spec, err := experiments.Lookup("fig1a")
	if err != nil {
		t.Fatal(err)
	}
	res, err := spec.Run(true, 7)
	if err != nil {
		t.Fatal(err)
	}
	rec := runRecord{
		ID: res.ID, Title: res.Title, Quick: true, Seed: 7,
		Header: res.Header, Rows: res.Rows, Notes: res.Notes, ElapsedMS: 12,
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := writeJSONResults(path, []runRecord{rec}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back []runRecord
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(back) != 1 {
		t.Fatalf("got %d records, want 1", len(back))
	}
	got := back[0]
	if got.ID != "fig1a" || !got.Quick || got.Seed != 7 || got.ElapsedMS != 12 {
		t.Fatalf("record fields lost in round trip: %+v", got)
	}
	if len(got.Header) == 0 || len(got.Rows) == 0 {
		t.Fatalf("empty series in record: header=%v rows=%d", got.Header, len(got.Rows))
	}
	if len(got.Rows[0]) != len(got.Header) {
		t.Fatalf("row width %d does not match header width %d", len(got.Rows[0]), len(got.Header))
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
}
