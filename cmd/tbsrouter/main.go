// Command tbsrouter fronts a cluster of tbsd nodes: it terminates client
// HTTP, maps each stream key to its owning node on a consistent-hash
// ring (static membership from -cluster-config), and forwards the
// request — JSON and streaming NDJSON bodies alike — with pooled copy
// buffers. Per-node health probes (with retry, timeout and exponential
// backoff) feed a degraded-routing mode: requests for a down node's keys
// answer a structured 503 naming the owner instead of hanging on a dead
// TCP connection.
//
// Usage:
//
//	tbsrouter -addr :8477 -cluster-config cluster.json
//
// where cluster.json is
//
//	{"nodes": [{"name": "a", "addr": "127.0.0.1:8378"},
//	           {"name": "b", "addr": "127.0.0.1:8379"},
//	           {"name": "c", "addr": "127.0.0.1:8380"}]}
//
// API (everything a single tbsd serves, plus cluster operations):
//
//	/v1/streams/{key}...        forwarded verbatim to the key's owner
//	GET  /v1/streams            fan-out merge of every healthy node
//	GET  /cluster/nodes         ring membership + live health
//	POST /cluster/handoff       migrate a stream: ?key=K&to=NODE drives
//	                            the owner's /handoff → target's /adopt
//	                            and updates the routing override
//	GET  /metrics               router + per-node counters
//	GET  /healthz               router liveness
//	GET  /readyz                ready once every node has been probed and
//	                            at least one is healthy
//
// See internal/cluster for the ring, prober and router internals and
// README.md for a three-node walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

func main() {
	var (
		addr          = flag.String("addr", ":8477", "listen address (use :0 for an ephemeral port)")
		configPath    = flag.String("cluster-config", "", "JSON file with the static cluster membership (required)")
		probeInterval = flag.Duration("probe-interval", 500*time.Millisecond, "health probe period per node")
		probeTimeout  = flag.Duration("probe-timeout", time.Second, "health probe HTTP timeout")
		failThreshold = flag.Int("fail-threshold", 2, "consecutive probe failures before a node is routed around")
		maxBackoff    = flag.Duration("max-probe-backoff", 0, "probe backoff cap while a node is down (0 = 8x probe-interval)")
		logFormat     = flag.String("log-format", "text", "log output format: text or json")
		logLevel      = flag.String("log-level", "info", "minimum log level: debug, info, warn, error (debug also emits one line per traced request)")
		debugAddr     = flag.String("debug-addr", "", "opt-in debug listener (pprof, runtime gauges, trace ring), e.g. 127.0.0.1:6061; empty disables")
		traceRing     = flag.Int("trace-ring", obs.DefaultRingSize, "recent-trace ring capacity for /debug/trace/recent (0 disables tracing entirely)")
	)
	flag.Parse()
	logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tbsrouter:", err)
		os.Exit(2)
	}
	logger = logger.With("app", "tbsrouter")
	fatal := func(args ...any) {
		fmt.Fprintln(os.Stderr, append([]any{"tbsrouter:"}, args...)...)
		os.Exit(2)
	}

	if *configPath == "" {
		fatal("-cluster-config is required")
	}
	cfg, err := cluster.LoadConfig(*configPath)
	if err != nil {
		fatal(err)
	}
	ring, err := cfg.Ring()
	if err != nil {
		fatal(err)
	}
	var tracer *obs.Tracer
	if *traceRing > 0 {
		tracer = obs.NewTracer(*traceRing, logger)
	}
	router, err := cluster.NewRouter(cluster.RouterOptions{
		Ring:            ring,
		ProbeInterval:   *probeInterval,
		ProbeTimeout:    *probeTimeout,
		FailThreshold:   *failThreshold,
		MaxProbeBackoff: *maxBackoff,
		Logger:          logger,
		Trace:           tracer,
	})
	if err != nil {
		fatal(err)
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	logger.Info(fmt.Sprintf("listening on %s (%d nodes, %d virtual nodes each)",
		lis.Addr(), len(ring.Nodes()), ring.VirtualNodes()),
		"addr", lis.Addr().String(), "nodes", len(ring.Nodes()), "vnodes", ring.VirtualNodes())

	var debugSrv *http.Server
	if *debugAddr != "" {
		dlis, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatal(err)
		}
		debugSrv = &http.Server{Handler: obs.NewDebugMux(tracer)}
		logger.Info("debug listener on "+dlis.Addr().String(), "addr", dlis.Addr().String())
		go func() {
			if err := debugSrv.Serve(dlis); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "err", err)
			}
		}()
	}

	httpSrv := &http.Server{Handler: router.Handler()}
	router.Start()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(lis) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	exitCode := 0
	select {
	case s := <-sig:
		logger.Info("received signal, shutting down", "signal", s.String())
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve failed", "err", err)
			exitCode = 1
		}
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		logger.Error("http shutdown failed", "err", err)
	}
	if debugSrv != nil {
		_ = debugSrv.Close()
	}
	router.Stop()
	logger.Info("shutdown complete")
	os.Exit(exitCode)
}
